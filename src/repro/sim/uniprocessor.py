"""Event-driven preemptive uniprocessor MC simulation engine.

Time is integer.  The engine stops at every *scheduling-relevant* instant —
job release, job completion, LO-budget exhaustion (potential mode switch)
and the earliest deadline among incomplete ready jobs (for exact miss
detection) — and runs the policy's highest-priority ready job in between.

Mode automaton (for mode-aware policies):

* LO → HI at the first instant an HC job has executed ``C_L`` time units
  without completing; LC jobs are abandoned and LC releases suppressed when
  the policy drops LC work.  With a degraded service model attached to the
  policy (:mod:`repro.degradation`), LC work is *degraded* instead: pending
  LC jobs are truncated to their HI-mode budget (jobs that already consumed
  it end immediately — a fulfilled degraded contract, not a miss), and LC
  releases continue at the degraded budget / stretched period and deadline;
* HI → LO at the next idle instant (the standard AMC/EDF-VD reset rule),
  after which full LC service resumes.

Deadline misses are classified at the instant the deadline passes:
an HC miss is always an MC violation; an LC miss in HI mode is a violation
when the job was admitted under a degraded-service guarantee, and otherwise
(drop semantics) only LO-mode LC misses violate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model import MCTask, TaskSet
from repro import obs as _obs
from repro.sim.policies import SchedulingPolicy
from repro.sim.scenario import Scenario
from repro.sim.trace import ExecutionTrace

__all__ = ["MissRecord", "SimResult", "UniprocessorSim"]


@dataclass
class _Job:
    task: MCTask
    index: int
    release: int
    deadline: int
    exec_time: int
    executed: int = 0
    missed: bool = False

    @property
    def remaining(self) -> int:
        return self.exec_time - self.executed

    @property
    def complete(self) -> bool:
        return self.executed >= self.exec_time


@dataclass(frozen=True)
class MissRecord:
    """One deadline miss, with the context needed to classify it."""

    task_name: str
    criticality_high: bool
    job_index: int
    release: int
    deadline: int
    high_mode_at_miss: bool
    #: the job was serviced under a degraded LC guarantee (so a HI-mode
    #: miss is a contract violation, unlike best-effort drop semantics)
    degraded_service: bool = False

    @property
    def is_violation(self) -> bool:
        """True when the miss violates MC-correctness."""
        return (
            self.criticality_high
            or not self.high_mode_at_miss
            or self.degraded_service
        )


@dataclass
class SimResult:
    """Aggregate outcome of one simulation run."""

    policy_name: str
    scenario_name: str
    horizon: int
    misses: list[MissRecord] = field(default_factory=list)
    mode_switches: list[int] = field(default_factory=list)
    idle_resets: int = 0
    jobs_released: int = 0
    jobs_completed: int = 0
    lc_jobs_dropped: int = 0
    lc_jobs_degraded: int = 0  #: LC jobs truncated to a degraded budget
    lc_releases_suppressed: int = 0
    preemptions: int = 0
    trace: ExecutionTrace | None = None  #: populated when record_trace=True

    @property
    def mc_violations(self) -> list[MissRecord]:
        """Misses that violate MC-correctness (HC always, LC in LO mode)."""
        return [m for m in self.misses if m.is_violation]

    @property
    def mc_correct(self) -> bool:
        """True when the run exhibited no MC violation."""
        return not self.mc_violations


class UniprocessorSim:
    """Simulates one core running ``taskset`` under ``policy``."""

    def __init__(self, taskset: TaskSet, policy: SchedulingPolicy):
        if not taskset.is_constrained_deadline:
            raise ValueError("simulator requires constrained deadlines")
        self.taskset = taskset
        self.policy = policy

    def run(
        self, scenario: Scenario, horizon: int, record_trace: bool = False
    ) -> SimResult:
        """Simulate ``[0, horizon)`` and return the result record.

        ``record_trace`` attaches an :class:`ExecutionTrace` to the result
        (who ran when, in which mode) at some memory cost.
        """
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        policy = self.policy
        service = policy.service if policy.degrades_lc else None
        result = SimResult(policy.name, scenario.describe(), horizon)
        if record_trace:
            result.trace = ExecutionTrace()
        next_release = {t.task_id: scenario.phase(t) for t in self.taskset}
        job_counter = {t.task_id: 0 for t in self.taskset}
        ready: list[_Job] = []
        high_mode = False
        time = 0
        last_running: _Job | None = None

        def release_due(now: int) -> None:
            nonlocal last_running
            for task in self.taskset:
                while next_release[task.task_id] <= now:
                    rel = next_release[task.task_id]
                    lc_in_high = high_mode and not task.is_high
                    if lc_in_high and service is not None:
                        # Degraded service: release at the HI-mode budget,
                        # period and deadline the service model grants.
                        budget = min(
                            service.degraded_budget(task), task.wcet_lo
                        )
                        next_release[task.task_id] = (
                            rel + service.degraded_period(task)
                        )
                        if budget <= 0:
                            result.lc_releases_suppressed += 1
                            continue
                        deadline = rel + service.degraded_deadline(task)
                    else:
                        budget = None
                        deadline = rel + task.deadline
                        next_release[task.task_id] = rel + task.period
                        if lc_in_high and policy.drops_lc_on_switch:
                            result.lc_releases_suppressed += 1
                            continue
                    idx = job_counter[task.task_id]
                    job_counter[task.task_id] += 1
                    exec_time = scenario.execution_time(task, idx)
                    limit = task.wcet_hi if task.is_high else task.wcet_lo
                    if not 1 <= exec_time <= limit:
                        raise ValueError(
                            f"scenario returned execution time {exec_time} for "
                            f"{task.name} job {idx}, outside [1, {limit}]"
                        )
                    if budget is not None and exec_time > budget:
                        exec_time = budget
                        result.lc_jobs_degraded += 1
                    ready.append(_Job(task, idx, rel, deadline, exec_time))
                    result.jobs_released += 1

        def record_misses(now: int) -> None:
            for job in ready:
                if not job.missed and not job.complete and job.deadline <= now:
                    job.missed = True
                    result.misses.append(
                        MissRecord(
                            job.task.name,
                            job.task.is_high,
                            job.index,
                            job.release,
                            job.deadline,
                            high_mode,
                            degraded_service=(
                                service is not None and not job.task.is_high
                            ),
                        )
                    )

        def switch_to_high(now: int) -> None:
            nonlocal high_mode
            high_mode = True
            result.mode_switches.append(now)
            if service is not None:
                # Degrade pending LC jobs to their HI-mode allowance: a job
                # that already consumed it completes at the degraded level
                # (contract fulfilled — removed without a miss); the rest
                # continue with their demand truncated to the allowance.
                kept = []
                for job in ready:
                    if job.task.is_high:
                        kept.append(job)
                        continue
                    budget = min(
                        service.degraded_budget(job.task), job.task.wcet_lo
                    )
                    if job.executed >= budget:
                        if budget == 0:
                            result.lc_jobs_dropped += 1
                        else:
                            result.lc_jobs_degraded += 1
                        continue
                    if job.exec_time > budget:
                        job.exec_time = budget
                        result.lc_jobs_degraded += 1
                    kept.append(job)
                ready[:] = kept
            elif policy.drops_lc_on_switch:
                dropped = [j for j in ready if not j.task.is_high]
                result.lc_jobs_dropped += len(dropped)
                ready[:] = [j for j in ready if j.task.is_high]

        # Simulation window is [0, horizon): releases at the horizon instant
        # itself are excluded (such a job could not execute anyway).
        while time < horizon:
            release_due(time)
            record_misses(time)

            if not ready:
                if high_mode and policy.mode_aware:
                    # Idle instant: reset to LO; LC releases resume.
                    high_mode = False
                    result.idle_resets += 1
                upcoming = [r for r in next_release.values() if r > time]
                if not upcoming:
                    break
                time = min(upcoming)
                last_running = None
                continue

            job = min(
                ready,
                key=lambda j: policy.priority_key(
                    j.task, j.release, high_mode, deadline=j.deadline
                ),
            )
            if last_running is not None and last_running is not job:
                if not last_running.complete and last_running in ready:
                    result.preemptions += 1
            last_running = job

            # Next instant anything can change.
            stops = [min(next_release.values()), time + job.remaining]
            if (
                policy.mode_aware
                and not high_mode
                and job.task.is_high
                and job.exec_time > job.task.wcet_lo
                and job.executed < job.task.wcet_lo
            ):
                stops.append(time + (job.task.wcet_lo - job.executed))
            future_deadlines = [
                j.deadline
                for j in ready
                if not j.missed and not j.complete and j.deadline > time
            ]
            if future_deadlines:
                stops.append(min(future_deadlines))
            # Clamp to the horizon: work (and hence completions or mode
            # switches) past the end of the window must not be accounted.
            next_time = min(min(stops), horizon)
            if next_time <= time:
                next_time = time + 1  # safety: always make progress

            if result.trace is not None:
                result.trace.record(time, next_time, job.task.name, high_mode)
            job.executed += next_time - time
            time = next_time

            if job.complete:
                ready.remove(job)
                result.jobs_completed += 1
                last_running = None
            elif (
                policy.mode_aware
                and not high_mode
                and job.task.is_high
                and job.executed == job.task.wcet_lo
                and job.exec_time > job.task.wcet_lo
            ):
                switch_to_high(time)

        record_misses(min(time, horizon))
        if _obs.active():
            _obs.REGISTRY.add_counters(
                {
                    "sim.runs": 1,
                    "sim.preemptions": result.preemptions,
                    "sim.mode-switches": len(result.mode_switches),
                    "sim.idle-resets": result.idle_resets,
                    "sim.jobs-released": result.jobs_released,
                    "sim.jobs-completed": result.jobs_completed,
                }
            )
        return result
