"""Scheduling policies for the simulator.

A policy supplies the priority key for ready jobs (smaller = run first),
what happens to LC work at a mode switch (drop, degrade, or full service),
and whether the runtime is mode-aware at all.  The engine
(:mod:`repro.sim.uniprocessor`) owns time, releases and the mode automaton.

Mode-aware policies optionally carry a
:class:`~repro.degradation.service.ServiceModel`: with a degraded (non-drop)
model attached, the engine truncates pending LC jobs to their degraded
budget at the switch, admits HI-mode LC releases at the degraded
budget/period/deadline, and treats any miss of such a serviced LC job as an
MC violation (degraded service is a *guarantee*, not best-effort).
"""

from __future__ import annotations

from repro.model import MCTask

__all__ = ["SchedulingPolicy", "EDFPolicy", "EDFVDPolicy", "AMCPolicy"]


def _parse_service(service):
    if service is None:
        return None
    from repro.degradation.service import parse_service_model

    return parse_service_model(service)


class SchedulingPolicy:
    """Interface the engine drives."""

    #: abandon LC jobs (and suppress LC releases) after the mode switch
    drops_lc_on_switch: bool = True
    #: whether exceeding the LO budget triggers a mode switch at all
    mode_aware: bool = True
    #: LC service model honored after the switch (None = per
    #: ``drops_lc_on_switch``); see :mod:`repro.degradation`
    service = None
    name: str = "abstract"

    @property
    def degrades_lc(self) -> bool:
        """True when LC tasks keep (reduced) service after the switch."""
        return (
            self.mode_aware
            and self.service is not None
            and not self.service.is_full_drop
        )

    def priority_key(
        self,
        task: MCTask,
        release: int,
        high_mode: bool,
        deadline: int | None = None,
    ) -> tuple:
        """Sortable priority of a job of ``task`` released at ``release``.

        Lower sorts first.  Must be stable for a given (job, mode); the
        engine re-evaluates keys when the mode changes.  ``deadline`` is
        the job's actual absolute deadline as assigned by the engine —
        under a degraded service model an LC job released in HI mode
        carries a stretched deadline, so deadline-driven policies must
        key on it rather than recomputing ``release + task.deadline``
        (the two coincide under drop semantics).
        """
        raise NotImplementedError


class EDFPolicy(SchedulingPolicy):
    """Plain EDF on real deadlines.

    With ``mode_aware=False`` (default) this is the static-reservation
    runtime matching ``EDFTest("reservation")``: HC budgets are always
    ``C_H`` and LC tasks are never dropped.
    """

    drops_lc_on_switch = False
    mode_aware = False
    name = "edf"

    def priority_key(
        self,
        task: MCTask,
        release: int,
        high_mode: bool,
        deadline: int | None = None,
    ) -> tuple:
        if deadline is None:
            deadline = release + task.deadline
        return (deadline, task.task_id)


class EDFVDPolicy(SchedulingPolicy):
    """EDF with virtual deadlines in LO mode.

    In LO mode HC jobs are prioritized by their *virtual* deadline —
    either ``release + x * D`` for the EDF-VD scaling factor ``x``, or
    ``release + Dv`` from an explicit per-task map (the EY/ECDF runtimes).
    After the switch, real deadlines apply and LC jobs are dropped — or,
    with a degraded ``service`` model attached, kept at their reduced
    budget / stretched period.
    """

    drops_lc_on_switch = True
    mode_aware = True

    def __init__(
        self,
        scaling_factor: float = 1.0,
        virtual_deadlines: dict[int, int] | None = None,
        service=None,
    ):
        if not 0.0 < scaling_factor <= 1.0:
            raise ValueError(
                f"scaling factor must be in (0, 1], got {scaling_factor}"
            )
        self.scaling_factor = scaling_factor
        self.virtual_deadlines = dict(virtual_deadlines or {})
        self.service = _parse_service(service)
        self.name = "edf-vd" if not self.virtual_deadlines else "edf-vd/map"
        if self.degrades_lc:
            self.name += f"+{self.service.spec()}"

    def lo_deadline(self, task: MCTask) -> float:
        """The LO-mode (virtual) relative deadline of ``task``."""
        if not task.is_high:
            return float(task.deadline)
        if task.task_id in self.virtual_deadlines:
            return float(self.virtual_deadlines[task.task_id])
        return self.scaling_factor * task.deadline

    def priority_key(
        self,
        task: MCTask,
        release: int,
        high_mode: bool,
        deadline: int | None = None,
    ) -> tuple:
        if high_mode:
            # The job's real deadline — for a degraded LC job released in
            # HI mode this is the engine-assigned (stretched) one.
            if deadline is None:
                deadline = release + task.deadline
            return (float(deadline), task.task_id)
        return (release + self.lo_deadline(task), task.task_id)


class AMCPolicy(SchedulingPolicy):
    """Fixed-priority adaptive mixed-criticality runtime.

    ``priorities`` maps ``task_id -> level`` (0 = highest), as produced by
    the AMC analyses.  Priorities do not change at the mode switch; LC jobs
    are dropped.
    """

    drops_lc_on_switch = True
    mode_aware = True
    name = "amc"

    def __init__(self, priorities: dict[int, int], service=None):
        if not priorities:
            raise ValueError("AMCPolicy requires a non-empty priority map")
        self.priorities = dict(priorities)
        self.service = _parse_service(service)
        if self.degrades_lc:
            self.name = f"amc+{self.service.spec()}"

    def priority_key(
        self,
        task: MCTask,
        release: int,
        high_mode: bool,
        deadline: int | None = None,
    ) -> tuple:
        try:
            level = self.priorities[task.task_id]
        except KeyError:
            raise KeyError(
                f"task {task.name} (id {task.task_id}) missing from priority map"
            ) from None
        return (level, release, task.task_id)
