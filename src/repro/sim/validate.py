"""Cross-validation of analyses against simulation.

The central integration check of this reproduction: every task set a
schedulability test *accepts* must survive adversarial simulation with zero
MC violations.  (The converse does not hold — all tests are sufficient-only,
so rejected sets may still simulate cleanly.)

:func:`policy_for` maps a test + its :class:`AnalysisResult` to the runtime
policy the test certifies; :func:`validate_against_simulation` runs the
standard scenario battery (nominal, every-single-task overrun, all-tasks
overrun, randomized) and reports any violation.
"""

from __future__ import annotations

import numpy as np

from repro.model import TaskSet
from repro.analysis.interface import AnalysisResult, SchedulabilityTest
from repro.sim.policies import AMCPolicy, EDFPolicy, EDFVDPolicy, SchedulingPolicy
from repro.sim.scenario import (
    FixedOverrunScenario,
    NominalScenario,
    RandomScenario,
    Scenario,
)
from repro.sim.uniprocessor import MissRecord, UniprocessorSim

__all__ = ["policy_for", "standard_scenarios", "validate_against_simulation"]

#: Default simulation horizon for validation runs; large enough to cover
#: several hyperperiod fragments of [10, 500] periods without making the
#: property-test suite crawl.
DEFAULT_HORIZON = 20_000


def policy_for(
    test: SchedulabilityTest,
    analysis: AnalysisResult,
    service=None,
) -> SchedulingPolicy:
    """The runtime policy certified by ``test``'s analysis outcome.

    ``service`` is the LC service model the analysis assumed (usually the
    analyzed task set's ``service_model``); the mode-aware policies honor
    it at the mode switch instead of unconditionally dropping LC work.
    """
    name = test.name
    if name.startswith("edf-vd"):
        return EDFVDPolicy(
            scaling_factor=analysis.scaling_factor, service=service
        )
    if name in ("ey", "ecdf"):
        return EDFVDPolicy(
            virtual_deadlines=analysis.virtual_deadlines, service=service
        )
    if name.startswith("amc"):
        return AMCPolicy(analysis.priorities, service=service)
    if name.startswith("edf"):
        return EDFPolicy()
    raise ValueError(f"no runtime policy known for test {name!r}")


def standard_scenarios(
    taskset: TaskSet, rng: np.random.Generator, random_runs: int = 3
) -> list[Scenario]:
    """The adversarial battery used by validation.

    * nominal (never switches);
    * each HC task overruns alone, on every job (worst sustained pressure
      from one trigger);
    * all HC tasks overrun on every job (maximal HI load, immediate switch);
    * each HC task overruns alone starting from a later job, so the switch
      happens mid-hyperperiod;
    * ``random_runs`` randomized scenarios (random phases, 30% overruns).
    """
    scenarios: list[Scenario] = [NominalScenario()]
    for task in taskset.high_tasks:
        scenarios.append(FixedOverrunScenario({task.task_id}))
        scenarios.append(FixedOverrunScenario({task.task_id}, overrun_job_index=2))
    if taskset.high_tasks:
        scenarios.append(FixedOverrunScenario(None))
    for run in range(random_runs):
        seed = int(rng.integers(2**63))
        scenarios.append(
            RandomScenario(
                np.random.default_rng(seed),
                overrun_prob=0.3,
                random_phases=run % 2 == 1,
                seed=seed,
            )
        )
    return scenarios


def validate_against_simulation(
    taskset: TaskSet,
    test: SchedulabilityTest,
    rng: np.random.Generator,
    horizon: int = DEFAULT_HORIZON,
    random_runs: int = 3,
) -> list[tuple[str, MissRecord]]:
    """Simulate an *accepted* task set under the certified policy.

    Returns all MC violations as ``(scenario_label, miss)`` pairs — an empty
    list is the expected outcome.  Raises ``ValueError`` when the test
    rejects ``taskset`` (callers should only validate accepted sets), or
    when the test cannot honor the task set's LC service model — analyzing
    with drop-at-switch semantics and then simulating degraded semantics
    would validate against a mismatched certificate.
    """
    if not test.supports_service_model(taskset.service_model):
        raise ValueError(
            f"test {test.name!r} does not analyze LC tasks under the "
            f"{taskset.service_model.spec()!r} service model; its verdicts "
            "assume drop-at-switch and cannot certify a degraded runtime"
        )
    analysis = test.analyze(taskset)
    if not analysis.schedulable:
        raise ValueError("validate_against_simulation requires an accepted task set")
    policy = policy_for(test, analysis, service=taskset.service_model)
    violations: list[tuple[str, MissRecord]] = []
    sim = UniprocessorSim(taskset, policy)
    for scenario in standard_scenarios(taskset, rng, random_runs):
        result = sim.run(scenario, horizon)
        violations.extend(
            (scenario.describe(), miss) for miss in result.mc_violations
        )
    return violations
