"""Partitioned multiprocessor simulation.

Runs one independent :class:`~repro.sim.uniprocessor.UniprocessorSim` per
core of a :class:`~repro.core.allocator.PartitionResult`.  Cores share
nothing: a mode switch on one core has no effect on any other — the
isolation property that distinguishes partitioned from global MC scheduling
(Section II of the paper), and which this module makes directly observable
(per-core mode-switch traces).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.model import TaskSet
from repro.sim.policies import SchedulingPolicy
from repro.sim.scenario import Scenario
from repro.sim.uniprocessor import MissRecord, SimResult, UniprocessorSim

__all__ = ["PartitionedSim", "PartitionedSimResult"]


@dataclass
class PartitionedSimResult:
    """Per-core results plus system-level aggregates."""

    per_core: tuple[SimResult, ...]

    @property
    def mc_violations(self) -> list[tuple[int, MissRecord]]:
        """All violations as ``(core_index, record)`` pairs."""
        out = []
        for idx, result in enumerate(self.per_core):
            out.extend((idx, miss) for miss in result.mc_violations)
        return out

    @property
    def mc_correct(self) -> bool:
        """No core exhibited an MC violation."""
        return all(result.mc_correct for result in self.per_core)

    @property
    def cores_switched(self) -> list[int]:
        """Indices of cores that entered HI mode at least once."""
        return [
            idx for idx, r in enumerate(self.per_core) if r.mode_switches
        ]


class PartitionedSim:
    """Simulates every core of a partition independently.

    Parameters
    ----------
    cores:
        Per-core task sets (e.g. ``PartitionResult.cores``).
    policy_factory:
        Builds the per-core policy from the core's task set — policies are
        per-core state (priority maps, virtual deadlines), never shared.
    """

    def __init__(
        self,
        cores: Sequence[TaskSet],
        policy_factory: Callable[[TaskSet], SchedulingPolicy],
    ):
        self.cores = tuple(cores)
        self.policy_factory = policy_factory

    def run(
        self,
        scenario_factory: Callable[[int], Scenario],
        horizon: int,
    ) -> PartitionedSimResult:
        """Run all cores over ``[0, horizon]``.

        ``scenario_factory(core_index)`` supplies each core's scenario, so
        callers can stress a single core (e.g. overrun only core 2) and
        verify others are untouched.
        """
        results = []
        for index, core in enumerate(self.cores):
            if not core:
                results.append(SimResult("idle", "empty-core", horizon))
                continue
            sim = UniprocessorSim(core, self.policy_factory(core))
            results.append(sim.run(scenario_factory(index), horizon))
        return PartitionedSimResult(tuple(results))
