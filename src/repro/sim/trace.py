"""Execution traces: what ran when, in which mode.

Optional instrumentation of the simulation engine.  A trace is a sequence
of maximal segments ``(start, end, task_name | None, high_mode)`` — task
name None meaning idle — suitable for debugging schedules, asserting
fine-grained properties in tests, and rendering a text gantt chart.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["TraceSegment", "ExecutionTrace"]


@dataclass(frozen=True)
class TraceSegment:
    """One maximal run of a single task (or idle) in a single mode."""

    start: int
    end: int
    task_name: str | None  #: None = idle
    high_mode: bool

    @property
    def length(self) -> int:
        return self.end - self.start


@dataclass
class ExecutionTrace:
    """Ordered, gap-free list of segments over the simulated window."""

    segments: list[TraceSegment] = field(default_factory=list)

    def record(self, start: int, end: int, task_name: str | None, high: bool) -> None:
        """Append execution of ``task_name`` over ``[start, end)``, merging
        with the previous segment when contiguous and identical."""
        if end <= start:
            return
        if self.segments:
            last = self.segments[-1]
            if (
                last.end == start
                and last.task_name == task_name
                and last.high_mode == high
            ):
                self.segments[-1] = TraceSegment(last.start, end, task_name, high)
                return
        self.segments.append(TraceSegment(start, end, task_name, high))

    # -- queries -----------------------------------------------------------
    def busy_time(self) -> int:
        """Total non-idle time."""
        return sum(s.length for s in self.segments if s.task_name is not None)

    def execution_time_of(self, task_name: str) -> int:
        """Total time ``task_name`` executed."""
        return sum(s.length for s in self.segments if s.task_name == task_name)

    def segments_of(self, task_name: str) -> list[TraceSegment]:
        """All segments of one task, in time order."""
        return [s for s in self.segments if s.task_name == task_name]

    def hi_mode_time(self) -> int:
        """Total time spent in HI mode (busy or idle)."""
        return sum(s.length for s in self.segments if s.high_mode)

    def task_at(self, instant: int) -> str | None:
        """The task executing at ``instant`` (None when idle/uncovered)."""
        for s in self.segments:
            if s.start <= instant < s.end:
                return s.task_name
        return None

    # -- rendering -------------------------------------------------------------
    def as_ascii(self, width: int = 72) -> str:
        """A crude text gantt: one lane per task, ``#`` LO / ``!`` HI."""
        if not self.segments:
            return "(empty trace)"
        horizon = self.segments[-1].end
        scale = max(1, -(-horizon // width))  # ceil division
        names = sorted(
            {s.task_name for s in self.segments if s.task_name is not None}
        )
        name_width = max((len(n) for n in names), default=4)
        lines = []
        for name in names:
            lane = [" "] * -(-horizon // scale)
            for s in self.segments_of(name):
                for cell in range(s.start // scale, -(-s.end // scale)):
                    if cell < len(lane):
                        lane[cell] = "!" if s.high_mode else "#"
            lines.append(f"{name.rjust(name_width)} |{''.join(lane)}|")
        lines.append(
            f"{' ' * name_width} 0{' ' * (len(lane) - len(str(horizon)))}{horizon}"
        )
        return "\n".join(lines)
