"""Execution-time scenarios for the simulator.

A scenario answers two questions per task: when is each job released (phase;
the inter-release separation is the period, the sporadic worst case) and how
long does each job execute.  Execution times are bounded by ``C_H`` for HC
tasks and ``C_L`` for LC tasks; an HC job with execution time above ``C_L``
triggers a mode switch the moment it exhausts its LO budget.
"""

from __future__ import annotations

import numpy as np

from repro.model import MCTask

__all__ = [
    "Scenario",
    "NominalScenario",
    "FixedOverrunScenario",
    "RandomScenario",
]


class Scenario:
    """Base scenario: synchronous release, every job runs its LO budget."""

    def phase(self, task: MCTask) -> int:
        """Release time of the first job (synchronous by default)."""
        return 0

    def execution_time(self, task: MCTask, job_index: int) -> int:
        """Execution demand of the ``job_index``-th job of ``task``."""
        return task.wcet_lo

    def describe(self) -> str:
        """Short label for reports."""
        return type(self).__name__


class NominalScenario(Scenario):
    """All jobs behave: LO budgets everywhere, no mode switch ever."""


class FixedOverrunScenario(Scenario):
    """Deterministic overruns: chosen HC tasks exceed ``C_L`` on one job.

    Parameters
    ----------
    overrun_task_ids:
        HC tasks that overrun (every HC task when None).
    overrun_job_index:
        Which job of each overrunning task misbehaves (all jobs when None —
        the sustained worst case used to stress HI mode).
    """

    def __init__(
        self,
        overrun_task_ids: set[int] | None = None,
        overrun_job_index: int | None = None,
    ):
        self.overrun_task_ids = overrun_task_ids
        self.overrun_job_index = overrun_job_index

    def execution_time(self, task: MCTask, job_index: int) -> int:
        if not task.is_high:
            return task.wcet_lo
        if (
            self.overrun_task_ids is not None
            and task.task_id not in self.overrun_task_ids
        ):
            return task.wcet_lo
        if self.overrun_job_index is not None and job_index != self.overrun_job_index:
            return task.wcet_lo
        return task.wcet_hi

    def describe(self) -> str:
        # The label embeds the actual task ids so two "selected" scenarios
        # in the same battery (or campaign shard report) stay distinguishable.
        which = (
            "all-HC"
            if self.overrun_task_ids is None
            else "tasks=" + ",".join(str(i) for i in sorted(self.overrun_task_ids))
        )
        when = (
            "every job"
            if self.overrun_job_index is None
            else f"job {self.overrun_job_index}"
        )
        return f"FixedOverrun({which}, {when})"


class RandomScenario(Scenario):
    """Randomized executions and phases for fuzz-style validation.

    Each HC job overruns with probability ``overrun_prob`` (execution
    uniform in ``(C_L, C_H]``); behaving jobs draw uniformly from
    ``[1, C_L]``.  Phases draw uniformly from ``[0, T)`` when
    ``random_phases`` is set.  Deterministic given the seeded ``rng`` and
    call order, so failures replay exactly.

    ``seed`` is purely descriptive: pass the integer the ``rng`` was seeded
    with so :meth:`describe` identifies the exact replayable run (campaign
    shard labels and validation reports would otherwise conflate every
    randomized scenario of a battery).
    """

    def __init__(
        self,
        rng: np.random.Generator,
        overrun_prob: float = 0.1,
        random_phases: bool = False,
        seed: int | None = None,
    ):
        if not 0.0 <= overrun_prob <= 1.0:
            raise ValueError(f"overrun_prob must be in [0,1], got {overrun_prob}")
        self._rng = rng
        self.overrun_prob = overrun_prob
        self.random_phases = random_phases
        self.seed = seed
        self._phases: dict[int, int] = {}
        self._draws: dict[tuple[int, int], int] = {}

    def phase(self, task: MCTask) -> int:
        if not self.random_phases:
            return 0
        if task.task_id not in self._phases:
            self._phases[task.task_id] = int(self._rng.integers(0, task.period))
        return self._phases[task.task_id]

    def execution_time(self, task: MCTask, job_index: int) -> int:
        key = (task.task_id, job_index)
        if key not in self._draws:
            if task.is_high and task.wcet_hi > task.wcet_lo and (
                self._rng.random() < self.overrun_prob
            ):
                value = int(self._rng.integers(task.wcet_lo + 1, task.wcet_hi + 1))
            else:
                value = int(self._rng.integers(1, task.wcet_lo + 1))
            self._draws[key] = value
        return self._draws[key]

    def describe(self) -> str:
        label = f"Random(p_overrun={self.overrun_prob}, phases={self.random_phases}"
        if self.seed is not None:
            label += f", seed={self.seed}"
        return label + ")"
