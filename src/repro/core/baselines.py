"""Baseline partitioning strategies the paper evaluates against.

Each is a published strategy (see Section I "Related Work" and Section IV of
the paper):

* :func:`ca_nosort_f_f` — ``CA(nosort)-F-F`` of Baruah et al. (Real-Time
  Systems 2014): criticality-aware phases, no sorting, first-fit for both
  classes.  With the EDF-VD test this is the only prior partitioned MC
  algorithm with a proven speed-up bound (8/3).
* :func:`ca_f_f` — ``CA-F-F`` of Rodriguez et al. (WMC 2013): like the
  above but with decreasing-utilization sorting inside each class; shown by
  them to dominate earlier criticality-aware strategies.
* :func:`ca_wu_f` — ``CA-Wu-F``: worst-fit by *HC utilization alone* for HC
  tasks, first-fit LC; the comparison strategy of the paper's Figure 1
  example (it ignores U_LH and therefore balances the wrong quantity).
* :func:`eca_wu_f` — ``ECA-Wu-F`` of Gu et al. (DATE 2014): ``ca_wu_f``
  enhanced with preference for heavy-utilization LC tasks, which are placed
  before the HC tasks ("heavy" = ``u_L >= threshold``; see DESIGN.md §5).
* :func:`ffd` / :func:`wfd` / :func:`bfd` — classical criticality-unaware
  first/worst/best-fit decreasing, the conventional non-MC yardsticks.
"""

from __future__ import annotations

from repro.core.allocator import PartitioningStrategy
from repro.core.strategies import (
    best_fit_by,
    first_fit,
    order_criticality_aware,
    order_criticality_aware_nosort,
    order_criticality_unaware,
    order_heavy_lc_first,
    register_strategy,
    worst_fit_by,
)

__all__ = ["ca_nosort_f_f", "ca_f_f", "ca_wu_f", "eca_wu_f", "ffd", "wfd", "bfd"]

#: Default "heavy LC task" threshold for ECA-Wu-F (Gu et al. define heavy
#: tasks by high utilization; the cited text leaves the cut-off to the
#: implementation — 0.5 makes a task heavier than half a core).
HEAVY_LC_THRESHOLD = 0.5


def ca_nosort_f_f() -> PartitioningStrategy:
    """``CA(nosort)-F-F`` — Baruah et al.'s partitioned EDF-VD strategy."""
    return PartitioningStrategy(
        name="ca-nosort-f-f",
        order=order_criticality_aware_nosort,
        hc_fit=first_fit,
        lc_fit=first_fit,
        description="criticality-aware, unsorted, first-fit/first-fit",
        order_spec=("ca-nosort",),
        hc_fit_spec=("first",),
        lc_fit_spec=("first",),
    )


def ca_f_f() -> PartitioningStrategy:
    """``CA-F-F`` — Rodriguez et al.'s sorted criticality-aware first-fit."""
    return PartitioningStrategy(
        name="ca-f-f",
        order=order_criticality_aware,
        hc_fit=first_fit,
        lc_fit=first_fit,
        description="criticality-aware, sorted, first-fit/first-fit",
        order_spec=("ca",),
        hc_fit_spec=("first",),
        lc_fit_spec=("first",),
    )


def ca_wu_f() -> PartitioningStrategy:
    """``CA-Wu-F`` — worst-fit by HC utilization alone (Figure 1 baseline)."""
    return PartitioningStrategy(
        name="ca-wu-f",
        order=order_criticality_aware,
        hc_fit=worst_fit_by(lambda p: p.u_hh),
        lc_fit=first_fit,
        description="criticality-aware, sorted, HC worst-fit on U_HH",
        order_spec=("ca",),
        hc_fit_spec=("worst", "u-hh"),
        lc_fit_spec=("first",),
    )


def eca_wu_f(threshold: float = HEAVY_LC_THRESHOLD) -> PartitioningStrategy:
    """``ECA-Wu-F`` — Gu et al.'s enhanced criticality-aware strategy."""
    return PartitioningStrategy(
        name="eca-wu-f",
        order=order_heavy_lc_first(threshold),
        hc_fit=worst_fit_by(lambda p: p.u_hh),
        lc_fit=first_fit,
        description=(
            f"heavy LC (u_L >= {threshold}) first, then HC worst-fit on "
            "U_HH, then light LC first-fit"
        ),
        order_spec=("heavy-lc-first", threshold),
        hc_fit_spec=("worst", "u-hh"),
        lc_fit_spec=("first",),
    )


def ffd() -> PartitioningStrategy:
    """Classical first-fit decreasing (criticality-unaware)."""
    return PartitioningStrategy(
        name="ffd",
        order=order_criticality_unaware,
        hc_fit=first_fit,
        lc_fit=first_fit,
        description="first-fit decreasing utilization",
        order_spec=("cu",),
        hc_fit_spec=("first",),
        lc_fit_spec=("first",),
    )


def wfd() -> PartitioningStrategy:
    """Classical worst-fit decreasing on total LO utilization."""
    return PartitioningStrategy(
        name="wfd",
        order=order_criticality_unaware,
        hc_fit=worst_fit_by(lambda p: p.utilization_lo),
        lc_fit=worst_fit_by(lambda p: p.utilization_lo),
        description="worst-fit decreasing utilization",
        order_spec=("cu",),
        hc_fit_spec=("worst", "u-lo"),
        lc_fit_spec=("worst", "u-lo"),
    )


def bfd() -> PartitioningStrategy:
    """Classical best-fit decreasing on total LO utilization."""
    return PartitioningStrategy(
        name="bfd",
        order=order_criticality_unaware,
        hc_fit=best_fit_by(lambda p: p.utilization_lo),
        lc_fit=best_fit_by(lambda p: p.utilization_lo),
        description="best-fit decreasing utilization",
        order_spec=("cu",),
        hc_fit_spec=("best", "u-lo"),
        lc_fit_spec=("best", "u-lo"),
    )


register_strategy("ca-nosort-f-f", ca_nosort_f_f)
register_strategy("ca-f-f", ca_f_f)
register_strategy("ca-wu-f", ca_wu_f)
register_strategy("eca-wu-f", eca_wu_f)
register_strategy("ffd", ffd)
register_strategy("wfd", wfd)
register_strategy("bfd", bfd)
