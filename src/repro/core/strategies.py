"""Reusable ordering and fit-rule building blocks plus the strategy registry.

Orders and fits compose into :class:`~repro.core.allocator.PartitioningStrategy`
instances; the concrete strategies of the paper live in
:mod:`repro.core.udp` (the contribution) and :mod:`repro.core.baselines`
(everything it is compared against).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.model import MCTask, TaskSet
from repro.core.allocator import PartitioningStrategy, ProcessorState

__all__ = [
    "order_criticality_aware",
    "order_criticality_aware_nosort",
    "order_criticality_unaware",
    "order_heavy_lc_first",
    "first_fit",
    "worst_fit_by",
    "best_fit_by",
    "udp_fit",
    "res_udp_fit",
    "register_strategy",
    "get_strategy",
    "registered_strategies",
]


# -- allocation orders ------------------------------------------------------

def _own_level_key(task: MCTask) -> tuple[float, int]:
    # Secondary key on task_id keeps orders deterministic across runs.
    return (-task.utilization_at_own_level, task.task_id)


def order_criticality_aware(taskset: TaskSet) -> list[MCTask]:
    """HC tasks (by decreasing ``u_H``) before LC tasks (by decreasing ``u_L``)."""
    high = sorted(taskset.high_tasks, key=_own_level_key)
    low = sorted(taskset.low_tasks, key=_own_level_key)
    return high + low


def order_criticality_aware_nosort(taskset: TaskSet) -> list[MCTask]:
    """HC tasks before LC tasks, each class in input order (Baruah et al.)."""
    return list(taskset.high_tasks) + list(taskset.low_tasks)


def order_criticality_unaware(taskset: TaskSet) -> list[MCTask]:
    """All tasks by decreasing utilization at their own criticality level."""
    return sorted(taskset, key=_own_level_key)


def order_heavy_lc_first(threshold: float) -> Callable[[TaskSet], list[MCTask]]:
    """Gu et al.'s enhanced order: heavy LC tasks, then HC, then light LC.

    An LC task is *heavy* when ``u_L >= threshold``; heavy LC tasks are
    allocated before any HC task (they would otherwise be unplaceable after
    the HC load is spread), the rest follows the criticality-aware order.
    """

    def order(taskset: TaskSet) -> list[MCTask]:
        heavy = sorted(
            (t for t in taskset.low_tasks if t.utilization_lo >= threshold),
            key=_own_level_key,
        )
        light = sorted(
            (t for t in taskset.low_tasks if t.utilization_lo < threshold),
            key=_own_level_key,
        )
        high = sorted(taskset.high_tasks, key=_own_level_key)
        return heavy + high + light

    return order


# -- fit rules -----------------------------------------------------------------

def first_fit(processors: Sequence[ProcessorState]) -> list[int]:
    """Processors in fixed index order."""
    return list(range(len(processors)))


def worst_fit_by(
    metric: Callable[[ProcessorState], float],
) -> Callable[[Sequence[ProcessorState]], list[int]]:
    """Processors by *increasing* metric (emptiest-by-metric first)."""

    def fit(processors: Sequence[ProcessorState]) -> list[int]:
        return sorted(range(len(processors)), key=lambda i: (metric(processors[i]), i))

    return fit


def best_fit_by(
    metric: Callable[[ProcessorState], float],
) -> Callable[[Sequence[ProcessorState]], list[int]]:
    """Processors by *decreasing* metric (fullest-by-metric first)."""

    def fit(processors: Sequence[ProcessorState]) -> list[int]:
        return sorted(
            range(len(processors)), key=lambda i: (-metric(processors[i]), i)
        )

    return fit


#: Worst-fit on the utilization difference ``U_HH - U_LH`` — line 3 of
#: Algorithm 1; the core of both UDP strategies.
udp_fit = worst_fit_by(lambda p: p.utilization_difference)

#: Worst-fit on the residual-aware difference ``U_HH + U_res - U_LH`` — the
#: degradation-aware UDP metric: with a service model that keeps LC tasks
#: alive in HI mode, the load a core absorbs at the switch includes their
#: residual utilization.  Identical to :data:`udp_fit` under drop semantics
#: (``U_res`` is identically 0 then).
res_udp_fit = worst_fit_by(lambda p: p.residual_difference)


# -- registry --------------------------------------------------------------------

_STRATEGIES: dict[str, Callable[[], PartitioningStrategy]] = {}


def register_strategy(
    name: str, factory: Callable[[], PartitioningStrategy]
) -> None:
    """Register a strategy factory under ``name``."""
    _STRATEGIES[name] = factory


def get_strategy(name: str) -> PartitioningStrategy:
    """Instantiate the registered strategy called ``name``."""
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        known = ", ".join(sorted(_STRATEGIES))
        raise KeyError(f"unknown strategy {name!r}; known: {known}") from None
    return factory()


def registered_strategies() -> tuple[str, ...]:
    """Names of all registered strategies, sorted."""
    return tuple(sorted(_STRATEGIES))
