"""Generic partitioned-allocation engine.

A :class:`PartitioningStrategy` is three pluggable pieces:

* ``order`` — maps the input task set to the allocation sequence (this is
  where criticality-aware vs criticality-unaware and all sorting rules
  live);
* ``hc_fit`` / ``lc_fit`` — given the current processor states, return the
  order in which processors are *tried* for an HC / LC task (first-fit,
  worst-fit on a metric, ...).

The engine walks the allocation sequence; for each task it tries processors
in fit order and assigns the task to the first processor whose uniprocessor
MC schedulability test still passes with the task added.  If no processor
admits the task, partitioning fails (matching Algorithm 1 of the paper).
Every strategy expressed this way "considers all processors for allocation
of a task before declaring failure", which is the premise of the 8/3
speed-up inheritance result for the EDF-VD test (Baruah et al. 2014,
Theorem 9).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.model import MCTask, TaskSet
from repro.analysis.interface import SchedulabilityTest

__all__ = [
    "ProcessorState",
    "FitRule",
    "OrderRule",
    "PartitioningStrategy",
    "PartitionResult",
    "partition",
]


class ProcessorState:
    """Mutable per-core accumulator used during allocation.

    Tracks the assigned tasks and the three utilization sums the fit rules
    key on (``U_LL``, ``U_LH``, ``U_HH`` of the core).
    """

    __slots__ = ("index", "tasks", "u_ll", "u_lh", "u_hh", "_taskset")

    def __init__(self, index: int):
        self.index = index
        self.tasks: list[MCTask] = []
        self.u_ll = 0.0
        self.u_lh = 0.0
        self.u_hh = 0.0
        self._taskset: TaskSet | None = TaskSet()

    def add(self, task: MCTask) -> None:
        """Assign ``task`` to this core."""
        self.tasks.append(task)
        if task.is_high:
            self.u_lh += task.utilization_lo
            self.u_hh += task.utilization_hi
        else:
            self.u_ll += task.utilization_lo
        self._taskset = None

    @property
    def utilization_difference(self) -> float:
        """``U_HH(core) - U_LH(core)`` — the UDP balancing metric."""
        return self.u_hh - self.u_lh

    @property
    def utilization_lo(self) -> float:
        """Total LO-mode utilization on this core."""
        return self.u_ll + self.u_lh

    def taskset(self) -> TaskSet:
        """The core's current tasks as an immutable :class:`TaskSet`."""
        if self._taskset is None:
            self._taskset = TaskSet(self.tasks)
        return self._taskset


#: Returns the processor *indices* to try, most preferred first.
FitRule = Callable[[Sequence[ProcessorState]], list[int]]

#: Maps the input task set to the allocation order.
OrderRule = Callable[[TaskSet], list[MCTask]]


@dataclass(frozen=True)
class PartitioningStrategy:
    """A named (order, HC fit, LC fit) triple; see module docstring."""

    name: str
    order: OrderRule
    hc_fit: FitRule
    lc_fit: FitRule
    description: str = ""

    def fit_for(self, task: MCTask) -> FitRule:
        """The fit rule that applies to ``task``'s criticality."""
        return self.hc_fit if task.is_high else self.lc_fit


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a partitioning attempt."""

    success: bool
    strategy_name: str
    test_name: str
    m: int
    cores: tuple[TaskSet, ...]
    assignment: dict[int, int] = field(default_factory=dict)
    failed_task: MCTask | None = None

    def __bool__(self) -> bool:
        return self.success

    def core_of(self, task: MCTask) -> int:
        """Core index ``task`` was assigned to (KeyError when unassigned)."""
        return self.assignment[task.task_id]

    def describe(self) -> str:
        """Human-readable multi-line summary (used by the examples)."""
        lines = [
            f"{self.strategy_name} + {self.test_name} on m={self.m}: "
            + ("SUCCESS" if self.success else "FAILED")
        ]
        for idx, core in enumerate(self.cores):
            util = core.utilization
            names = ", ".join(t.name for t in core) or "-"
            lines.append(
                f"  core {idx}: [{names}]  U_LL={util.u_ll:.3f} "
                f"U_LH={util.u_lh:.3f} U_HH={util.u_hh:.3f} "
                f"diff={util.difference:.3f}"
            )
        if self.failed_task is not None:
            lines.append(f"  could not place: {self.failed_task}")
        return "\n".join(lines)


def partition(
    taskset: TaskSet,
    m: int,
    test: SchedulabilityTest,
    strategy: PartitioningStrategy,
) -> PartitionResult:
    """Statically assign ``taskset`` to ``m`` cores; see module docstring.

    The schedulability ``test`` is evaluated on the candidate core's tasks
    *plus* the new task before every assignment, exactly as in Algorithm 1
    of the paper (lines 5 and 16).
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    processors = [ProcessorState(i) for i in range(m)]
    assignment: dict[int, int] = {}

    for task in strategy.order(taskset):
        fit = strategy.fit_for(task)
        placed = False
        for proc_index in fit(processors):
            candidate = processors[proc_index].taskset().with_task(task)
            if test.is_schedulable(candidate):
                processors[proc_index].add(task)
                assignment[task.task_id] = proc_index
                placed = True
                break
        if not placed:
            return PartitionResult(
                success=False,
                strategy_name=strategy.name,
                test_name=test.name,
                m=m,
                cores=tuple(p.taskset() for p in processors),
                assignment=assignment,
                failed_task=task,
            )
    return PartitionResult(
        success=True,
        strategy_name=strategy.name,
        test_name=test.name,
        m=m,
        cores=tuple(p.taskset() for p in processors),
        assignment=assignment,
    )
