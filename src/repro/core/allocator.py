"""Generic partitioned-allocation engine.

A :class:`PartitioningStrategy` is three pluggable pieces:

* ``order`` — maps the input task set to the allocation sequence (this is
  where criticality-aware vs criticality-unaware and all sorting rules
  live);
* ``hc_fit`` / ``lc_fit`` — given the current processor states, return the
  order in which processors are *tried* for an HC / LC task (first-fit,
  worst-fit on a metric, ...).

The engine walks the allocation sequence; for each task it tries processors
in fit order and assigns the task to the first processor whose uniprocessor
MC schedulability test still passes with the task added.  If no processor
admits the task, partitioning fails (matching Algorithm 1 of the paper).
Every strategy expressed this way "considers all processors for allocation
of a task before declaring failure", which is the premise of the 8/3
speed-up inheritance result for the EDF-VD test (Baruah et al. 2014,
Theorem 9).

Probing is incremental by default: tests that provide an
:class:`~repro.analysis.context.AnalysisContext` get one per core, so each
admission probe reuses the core's accumulated analysis state instead of
rebuilding a :class:`TaskSet` and re-deriving everything from scratch.
Contexts are bit-identical to the from-scratch path by construction (and by
the differential test suite); ``incremental=False`` forces the historical
from-scratch probes, which the benchmarks use as the comparison baseline.
:class:`ProcessorState` stays the shared accumulator either way — fit rules
read their utilization sums from it, never from the contexts.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass, field

from repro.model import MCTask, TaskSet
from repro import obs as _obs
from repro.analysis import verdict_cache as _vcache
from repro.analysis.interface import SchedulabilityTest

__all__ = [
    "ProcessorState",
    "FitRule",
    "OrderRule",
    "PartitioningStrategy",
    "PartitionResult",
    "UnsupportedTasksetError",
    "partition",
]


class UnsupportedTasksetError(ValueError):
    """A (strategy, test) pairing was asked to partition a task set that
    violates the test's model assumptions (``test.supports`` is False).

    Raised up front by :func:`partition`, before any probing, so an
    incompatible pairing (e.g. EDF-VD's implicit-deadline-only utilization
    test against a constrained-deadline sweep) fails with a clear, typed
    error instead of an arbitrary ``ValueError`` from deep inside the
    analysis mid-campaign.  Subclasses ``ValueError`` for backward
    compatibility with callers that caught the old behavior.
    """

    def __init__(self, strategy_name: str, test_name: str, reason: str):
        self.strategy_name = strategy_name
        self.test_name = test_name
        self.reason = reason
        super().__init__(
            f"strategy {strategy_name!r} with test {test_name!r} cannot "
            f"partition this task set: {reason}"
        )


class ProcessorState:
    """Mutable per-core accumulator used during allocation.

    Tracks the assigned tasks and the utilization sums the fit rules key on
    (``U_LL``, ``U_LH``, ``U_HH`` of the core, plus — when a degraded LC
    service model is in force — the residual LC HI-mode utilization
    ``U_res``).  ``service`` is the task set's LC service model (None =
    drop-at-switch); it propagates into the core task sets so per-core
    analyses see it.
    """

    __slots__ = ("index", "tasks", "u_ll", "u_lh", "u_hh", "u_res",
                 "service", "_degraded", "_taskset")

    def __init__(self, index: int, service=None):
        self.index = index
        self.service = service
        self._degraded = service is not None and not service.is_full_drop
        self.tasks: list[MCTask] = []
        self.u_ll = 0.0
        self.u_lh = 0.0
        self.u_hh = 0.0
        self.u_res = 0.0
        self._taskset: TaskSet | None = TaskSet((), service_model=service)

    def add(self, task: MCTask) -> None:
        """Assign ``task`` to this core."""
        self.tasks.append(task)
        if task.is_high:
            self.u_lh += task.utilization_lo
            self.u_hh += task.utilization_hi
        else:
            self.u_ll += task.utilization_lo
            if self._degraded:
                self.u_res += self.service.residual_utilization(task)
        self._taskset = None

    @property
    def utilization_difference(self) -> float:
        """``U_HH(core) - U_LH(core)`` — the UDP balancing metric."""
        return self.u_hh - self.u_lh

    @property
    def residual_difference(self) -> float:
        """``U_HH(core) + U_res(core) - U_LH(core)`` — the degradation-aware
        UDP balancing metric: the extra utilization the core absorbs at a
        mode switch when LC tasks keep residual service.  Equals
        :attr:`utilization_difference` under drop semantics (``U_res`` is
        identically 0)."""
        return self.u_hh + self.u_res - self.u_lh

    @property
    def utilization_lo(self) -> float:
        """Total LO-mode utilization on this core."""
        return self.u_ll + self.u_lh

    def taskset(self) -> TaskSet:
        """The core's current tasks as an immutable :class:`TaskSet`."""
        if self._taskset is None:
            self._taskset = TaskSet(self.tasks, service_model=self.service)
        return self._taskset


#: Returns the processor *indices* to try, most preferred first.
FitRule = Callable[[Sequence[ProcessorState]], list[int]]

#: Maps the input task set to the allocation order.
OrderRule = Callable[[TaskSet], list[MCTask]]


@dataclass(frozen=True)
class PartitioningStrategy:
    """A named (order, HC fit, LC fit) triple; see module docstring.

    The optional ``*_spec`` fields are declarative twins of the callable
    rules, consumed by the columnar allocation replay of
    :func:`repro.core.batch.partition_batch`: an order spec is
    ``("ca",)``, ``("ca-nosort",)``, ``("cu",)`` or
    ``("heavy-lc-first", threshold)``; a fit spec is ``("first",)``,
    ``("worst", metric)`` or ``("best", metric)`` with ``metric`` one of
    ``"difference"``, ``"res-difference"``, ``"u-hh"`` or ``"u-lo"``
    (matching the :class:`ProcessorState` properties the callable reads).
    A spec must describe the callable exactly — the differential tests
    compare the replayed walk against the real rules; strategies without
    specs simply opt out of the replay.
    """

    name: str
    order: OrderRule
    hc_fit: FitRule
    lc_fit: FitRule
    description: str = ""
    order_spec: tuple | None = None
    hc_fit_spec: tuple | None = None
    lc_fit_spec: tuple | None = None

    def fit_for(self, task: MCTask) -> FitRule:
        """The fit rule that applies to ``task``'s criticality."""
        return self.hc_fit if task.is_high else self.lc_fit

    @property
    def replayable(self) -> bool:
        """True when every rule carries a spec for the columnar replay."""
        return (
            self.order_spec is not None
            and self.hc_fit_spec is not None
            and self.lc_fit_spec is not None
        )


@dataclass(frozen=True)
class PartitionResult:
    """Outcome of a partitioning attempt."""

    success: bool
    strategy_name: str
    test_name: str
    m: int
    cores: tuple[TaskSet, ...]
    assignment: dict[int, int] = field(default_factory=dict)
    failed_task: MCTask | None = None

    def __bool__(self) -> bool:
        return self.success

    def core_of(self, task: MCTask) -> int:
        """Core index ``task`` was assigned to (KeyError when unassigned)."""
        return self.assignment[task.task_id]

    def describe(self) -> str:
        """Human-readable multi-line summary (used by the examples).

        Under a degraded LC service model each core line additionally
        reports ``U_res`` (the residual LC HI-mode utilization) and
        ``rdiff`` (``U_HH + U_res - U_LH``) — the quantity the residual-
        aware strategies (``ca-udp-res``/``cu-udp-res``) actually balance —
        so the printout matches what ``res_udp_fit`` sorted cores by.
        """
        lines = [
            f"{self.strategy_name} + {self.test_name} on m={self.m}: "
            + ("SUCCESS" if self.success else "FAILED")
        ]
        for idx, core in enumerate(self.cores):
            util = core.utilization
            names = ", ".join(t.name for t in core) or "-"
            line = (
                f"  core {idx}: [{names}]  U_LL={util.u_ll:.3f} "
                f"U_LH={util.u_lh:.3f} U_HH={util.u_hh:.3f} "
                f"diff={util.difference:.3f}"
            )
            service = core.service_model
            if service is not None and not service.is_full_drop:
                u_res = core.residual_utilization
                rdiff = util.u_hh + u_res - util.u_lh
                line += f" U_res={u_res:.3f} rdiff={rdiff:.3f}"
            lines.append(line)
        if self.failed_task is not None:
            lines.append(f"  could not place: {self.failed_task}")
        return "\n".join(lines)


def partition(
    taskset: TaskSet,
    m: int,
    test: SchedulabilityTest,
    strategy: PartitioningStrategy,
    *,
    incremental: bool = True,
) -> PartitionResult:
    """Statically assign ``taskset`` to ``m`` cores; see module docstring.

    The schedulability ``test`` is evaluated on the candidate core's tasks
    *plus* the new task before every assignment, exactly as in Algorithm 1
    of the paper (lines 5 and 16).  With ``incremental=True`` (the default)
    and a test that provides an analysis context, probes run against
    per-core :class:`~repro.analysis.context.AnalysisContext` objects;
    otherwise each probe rebuilds the candidate task set from scratch.
    Both paths produce the identical :class:`PartitionResult`.

    Raises :class:`UnsupportedTasksetError` when ``test.supports(taskset)``
    is False (the task set violates the test's model assumptions), and
    ``ValueError`` when ``m`` is not positive.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    if len(taskset) and not test.supports(taskset):
        raise UnsupportedTasksetError(
            strategy.name,
            test.name,
            "the task set violates the test's model assumptions "
            "(see SchedulabilityTest.supports, e.g. EDF-VD requires "
            "implicit deadlines)",
        )
    service = taskset.service_model
    if len(taskset) and not test.supports_service_model(service):
        raise UnsupportedTasksetError(
            strategy.name,
            test.name,
            f"the test does not analyze LC tasks under the "
            f"{service.spec()!r} service model (see "
            "SchedulabilityTest.supports_service_model; e.g. the AMC "
            "analyses assume drop-at-switch)",
        )
    # Opt-in canonical verdict cache: repeated (taskset, m, test,
    # strategy, service) probes — across sweep buckets, strategies and
    # campaign resumes — replay the recorded placement instead of paying
    # the probes again.  Consulted after the support checks so unsupported
    # pairings keep raising their typed errors.
    cached = _vcache.lookup_partition(taskset, m, test, strategy)
    if cached is not None:
        return cached
    processors = [ProcessorState(i, service=service) for i in range(m)]
    contexts = None
    if incremental:
        candidates = [test.make_context(service) for _ in range(m)]
        if all(context is not None for context in candidates):
            contexts = candidates
    assignment: dict[int, int] = {}
    fit_attempts = 0
    commits = 0

    for task in strategy.order(taskset):
        fit = strategy.fit_for(task)
        placed = False
        for proc_index in fit(processors):
            fit_attempts += 1
            if contexts is not None:
                admitted = contexts[proc_index].probe(task)
            else:
                candidate = processors[proc_index].taskset().with_task(task)
                admitted = test.is_schedulable(candidate)
            if admitted:
                processors[proc_index].add(task)
                if contexts is not None:
                    contexts[proc_index].commit(task)
                assignment[task.task_id] = proc_index
                placed = True
                commits += 1
                break
        if not placed:
            _record_partition_metrics(strategy.name, fit_attempts, commits, False)
            result = PartitionResult(
                success=False,
                strategy_name=strategy.name,
                test_name=test.name,
                m=m,
                cores=tuple(p.taskset() for p in processors),
                assignment=assignment,
                failed_task=task,
            )
            _vcache.store_partition(taskset, m, test, strategy, result)
            return result
    _record_partition_metrics(strategy.name, fit_attempts, commits, True)
    result = PartitionResult(
        success=True,
        strategy_name=strategy.name,
        test_name=test.name,
        m=m,
        cores=tuple(p.taskset() for p in processors),
        assignment=assignment,
    )
    _vcache.store_partition(taskset, m, test, strategy, result)
    return result


def _record_partition_metrics(
    strategy_name: str, fit_attempts: int, commits: int, success: bool
) -> None:
    """Fold one :func:`partition` run's totals into the obs registry.

    Local integers are accumulated unconditionally (two additions per
    probe) and only published here, so the per-probe hot loop stays free
    of registry lookups when recording is off.
    """
    if not _obs.active():
        return
    _obs.REGISTRY.add_counters(
        {
            f"alloc.{strategy_name}.fit-attempts": fit_attempts,
            f"alloc.{strategy_name}.commits": commits,
            f"alloc.{strategy_name}.placed" if success
            else f"alloc.{strategy_name}.failed": 1,
        }
    )
