"""Partitioned MC scheduling: allocation engine and strategies (S10).

This package contains the paper's contribution — the two utilization-
difference based partitioning strategies — together with every baseline
strategy the evaluation compares against, all expressed over one generic
allocation engine (:mod:`repro.core.allocator`):

* :func:`~repro.core.udp.ca_udp` — criticality-aware UDP (Algorithm 1).
* :func:`~repro.core.udp.cu_udp` — criticality-unaware UDP.
* :func:`~repro.core.baselines.ca_wu_f` — worst-fit by HC utilization
  (the paper's Figure 1 comparison strategy).
* :func:`~repro.core.baselines.ca_nosort_f_f` — Baruah et al.'s partitioned
  EDF-VD strategy (no sorting, first-fit; speed-up bound 8/3).
* :func:`~repro.core.baselines.ca_f_f` — Rodriguez et al.'s sorted
  criticality-aware first-fit.
* :func:`~repro.core.baselines.eca_wu_f` — Gu et al.'s enhanced
  criticality-aware strategy with heavy-LC preference.
* classical FFD/WFD/BFD for reference.

A *partitioned algorithm* in the paper's sense is a (strategy, test) pair:
``partition(taskset, m, test, strategy)`` statically maps tasks to cores,
admitting a task onto a core only when the core's uniprocessor MC test still
passes; per-core scheduling then uses the algorithm the test certifies.
"""

from repro.core.allocator import (
    PartitionResult,
    PartitioningStrategy,
    ProcessorState,
    UnsupportedTasksetError,
    partition,
)
from repro.core.batch import BatchPartitionOutcome, partition_batch
from repro.core.baselines import (
    bfd,
    ca_f_f,
    ca_nosort_f_f,
    ca_wu_f,
    eca_wu_f,
    ffd,
    wfd,
)
from repro.core.strategies import (
    get_strategy,
    registered_strategies,
)
from repro.core.udp import ca_udp, ca_udp_res, cu_udp, cu_udp_res

__all__ = [
    "BatchPartitionOutcome",
    "PartitionResult",
    "PartitioningStrategy",
    "ProcessorState",
    "UnsupportedTasksetError",
    "partition",
    "partition_batch",
    "ca_udp",
    "cu_udp",
    "ca_udp_res",
    "cu_udp_res",
    "ca_wu_f",
    "ca_nosort_f_f",
    "ca_f_f",
    "eca_wu_f",
    "ffd",
    "wfd",
    "bfd",
    "get_strategy",
    "registered_strategies",
]
