"""The paper's contribution: utilization-difference based partitioning.

Both strategies spread the per-core utilization difference
``U_HH(core) - U_LH(core)`` evenly by allocating every HC task with
*worst-fit on the difference* (the core with the smallest difference is
tried first).  A small difference means the extra demand a core must absorb
when it switches from LO to HI mode is small, which directly reduces the
pessimism of the EDF-VD, ECDF and AMC uniprocessor tests applied per core.

* :func:`ca_udp` (Algorithm 1): criticality-aware — all HC tasks (sorted by
  decreasing ``u_H``) are placed before any LC task (sorted by decreasing
  ``u_L``, first-fit).
* :func:`cu_udp`: criticality-unaware — HC and LC tasks are sorted together
  by their own-criticality utilization, so a heavy LC task is placed before
  lighter HC tasks and is far less likely to end up unplaceable.  Fit rules
  are unchanged (UDP worst-fit for HC, first-fit for LC).

The paper finds CU-UDP slightly ahead of CA-UDP overall (Section IV),
precisely because of those heavy LC tasks — Figure 2's worked example, which
``examples/paper_examples.py`` re-derives.
"""

from __future__ import annotations

from repro.core.allocator import PartitioningStrategy
from repro.core.strategies import (
    first_fit,
    order_criticality_aware,
    order_criticality_unaware,
    register_strategy,
    res_udp_fit,
    udp_fit,
)

__all__ = ["ca_udp", "cu_udp", "ca_udp_res", "cu_udp_res"]


def ca_udp() -> PartitioningStrategy:
    """CA-UDP — Algorithm 1 of the paper."""
    return PartitioningStrategy(
        name="ca-udp",
        order=order_criticality_aware,
        hc_fit=udp_fit,
        lc_fit=first_fit,
        description=(
            "criticality-aware; HC worst-fit on U_HH-U_LH, LC first-fit"
        ),
        order_spec=("ca",),
        hc_fit_spec=("worst", "difference"),
        lc_fit_spec=("first",),
    )


def cu_udp() -> PartitioningStrategy:
    """CU-UDP — the criticality-unaware variant."""
    return PartitioningStrategy(
        name="cu-udp",
        order=order_criticality_unaware,
        hc_fit=udp_fit,
        lc_fit=first_fit,
        description=(
            "criticality-unaware order; HC worst-fit on U_HH-U_LH, LC first-fit"
        ),
        order_spec=("cu",),
        hc_fit_spec=("worst", "difference"),
        lc_fit_spec=("first",),
    )


def ca_udp_res() -> PartitioningStrategy:
    """CA-UDP balancing the residual-aware difference ``U_HH + U_res - U_LH``.

    The degradation-aware variant of Algorithm 1: with a service model that
    keeps LC tasks alive in HI mode (:mod:`repro.degradation`), the demand
    jump a core absorbs at the switch is ``U_HH + U_res - U_LH`` — LC tasks
    placed on a core now *add* to its HI-mode load instead of vanishing.
    Under ``FullDrop`` the metric collapses to the paper's and the strategy
    allocates identically to :func:`ca_udp`.
    """
    return PartitioningStrategy(
        name="ca-udp-res",
        order=order_criticality_aware,
        hc_fit=res_udp_fit,
        lc_fit=first_fit,
        description=(
            "criticality-aware; HC worst-fit on U_HH+U_res-U_LH, LC first-fit"
        ),
        order_spec=("ca",),
        hc_fit_spec=("worst", "res-difference"),
        lc_fit_spec=("first",),
    )


def cu_udp_res() -> PartitioningStrategy:
    """CU-UDP on the residual-aware difference metric; see :func:`ca_udp_res`."""
    return PartitioningStrategy(
        name="cu-udp-res",
        order=order_criticality_unaware,
        hc_fit=res_udp_fit,
        lc_fit=first_fit,
        description=(
            "criticality-unaware order; HC worst-fit on U_HH+U_res-U_LH, "
            "LC first-fit"
        ),
        order_spec=("cu",),
        hc_fit_spec=("worst", "res-difference"),
        lc_fit_spec=("first",),
    )


register_strategy("ca-udp", ca_udp)
register_strategy("cu-udp", cu_udp)
register_strategy("ca-udp-res", ca_udp_res)
register_strategy("cu-udp-res", cu_udp_res)
