"""Batched partitioning over columnar task-set batches.

:func:`partition_batch` answers the sweep question — does
:func:`repro.core.allocator.partition` succeed? — for every set of a
:class:`~repro.model.batch.TaskSetBatch` at once, settling as much as
possible from the utilization columns alone:

1. the exact prefilter bank (:mod:`repro.analysis.prefilter`) rejects sets
   whose column sums prove partition failure for *any* allocation order;
2. the **utilization-ledger replay** walks the actual allocation loop —
   same task order, same fit order, same probe arithmetic — but answers
   each admission probe through the test's O(1)
   :class:`~repro.analysis.prefilter.ProbeScreen`.  For EDF-VD the screen
   is complete and the whole partition is a pure function of the ledger;
   for EY/ECDF the screen covers the utilization-decided region and the
   replay abandons a set the moment a probe would need dbf work;
3. everything still pending falls through to the incremental per-taskset
   :func:`partition` path on lazily materialized task sets.

Exactness
---------
The replay maintains one float ledger per core — ``(U_LL, U_LH, U_HH,
U_res)`` — updated by the identical ``+=`` fold the scalar path's
:class:`~repro.core.allocator.ProcessorState` and
:class:`~repro.analysis.context.AnalysisContext` accumulators perform, and
computes fit metrics with the same expressions those objects' properties
evaluate.  Allocation order comes from the strategy's declarative
``order_spec``/``fit_spec`` metadata, whose interpretation reproduces the
callable rules' sort keys exactly (tie-breaks included).  Together with the
screens' bit-exact mirrors of the context pre-screens, a replayed verdict
equals the scalar ``partition(...).success`` — the differential suite in
``tests/core/test_partition_batch.py`` asserts this across strategies,
tests and service models rather than trusting the argument.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.model import TaskSetBatch
from repro import obs as _obs
from repro.analysis.interface import SchedulabilityTest
from repro.analysis.prefilter import (
    PrefilterBank,
    ProbeScreen,
    default_prefilter_bank,
)
from repro.core.allocator import (
    PartitioningStrategy,
    UnsupportedTasksetError,
    partition,
)

__all__ = ["BatchPartitionOutcome", "partition_batch"]


@dataclass
class BatchPartitionOutcome:
    """Per-set verdicts of one batched partitioning run.

    ``accepted[i]`` is exactly ``partition(batch.taskset(i), ...).success``;
    ``settled[i]`` records which mechanism produced it — a prefilter name
    (``"sum-lo"``, ``"sum-hi"``, ``"lone-task"``), ``"ledger"`` for the
    columnar replay, or ``"full"`` for the per-taskset fallback.

    Demand-kernel diagnostics formerly carried here as ``kernel_counts``
    now live in the :mod:`repro.obs` registry (the sweep layer records
    per-algorithm deltas under ``kernel.<algorithm>.*``) — outcome
    equality and cache identity never depended on them.
    """

    accepted: list[bool] = field(default_factory=list)
    settled: list[str] = field(default_factory=list)

    @property
    def accepted_count(self) -> int:
        """Number of sets partitioned successfully."""
        return sum(self.accepted)

    def settled_counts(self) -> dict[str, int]:
        """How many sets each mechanism settled (the per-filter report)."""
        counts: dict[str, int] = {}
        for source in self.settled:
            counts[source] = counts.get(source, 0) + 1
        return counts


def _validate_batch_support(
    batch: TaskSetBatch,
    test: SchedulabilityTest,
    strategy: PartitioningStrategy,
) -> None:
    """The batch-level twin of ``partition``'s up-front support gates.

    Mirrors the per-set checks on the columns: every registered test
    requires constrained deadlines (``D <= T``) and implicit-only tests
    (``supports_deadline_type("constrained")`` is False) require ``D == T``
    — the exact structure :meth:`SchedulabilityTest.supports` inspects.
    Empty sets are exempt, as in the scalar path.
    """
    service = batch.service_model
    if len(batch) and batch.n_tasks and not test.supports_service_model(service):
        raise UnsupportedTasksetError(
            strategy.name,
            test.name,
            f"the test does not analyze LC tasks under the "
            f"{service.spec()!r} service model (see "
            "SchedulabilityTest.supports_service_model)",
        )
    implicit_only = not test.supports_deadline_type("constrained")
    bad = (
        (batch.deadline != batch.period)
        if implicit_only
        else (batch.deadline > batch.period)
    )
    if bad.any():
        raise UnsupportedTasksetError(
            strategy.name,
            test.name,
            "the batch contains task sets that violate the test's model "
            "assumptions (see SchedulabilityTest.supports, e.g. EDF-VD "
            "requires implicit deadlines)",
        )


def _order_indices(
    spec: tuple,
    n: int,
    is_high: list[bool],
    u_own: list[float],
    u_lo: list[float],
    tie: list[int],
) -> list[int]:
    """Local task indices in allocation order — the ``order_spec`` twin.

    Reproduces the sort keys of :mod:`repro.core.strategies` exactly:
    ``(-utilization_at_own_level, task_id)`` with Python's stable sort, so
    the returned permutation equals ``strategy.order(taskset)``.
    """
    indices = range(n)
    kind = spec[0]
    if kind == "ca":
        high = sorted(
            (i for i in indices if is_high[i]), key=lambda i: (-u_own[i], tie[i])
        )
        low = sorted(
            (i for i in indices if not is_high[i]),
            key=lambda i: (-u_own[i], tie[i]),
        )
        return high + low
    if kind == "ca-nosort":
        return [i for i in indices if is_high[i]] + [
            i for i in indices if not is_high[i]
        ]
    if kind == "cu":
        return sorted(indices, key=lambda i: (-u_own[i], tie[i]))
    if kind == "heavy-lc-first":
        threshold = spec[1]
        heavy = sorted(
            (i for i in indices if not is_high[i] and u_lo[i] >= threshold),
            key=lambda i: (-u_own[i], tie[i]),
        )
        light = sorted(
            (i for i in indices if not is_high[i] and u_lo[i] < threshold),
            key=lambda i: (-u_own[i], tie[i]),
        )
        high = sorted(
            (i for i in indices if is_high[i]), key=lambda i: (-u_own[i], tie[i])
        )
        return heavy + high + light
    raise ValueError(f"unknown order spec {spec!r}")


def _fit_indices(
    spec: tuple,
    m: int,
    a: list[float],
    b: list[float],
    c: list[float],
    res: list[float],
) -> list[int] | range:
    """Core indices in try order — the ``fit_spec`` twin.

    The metric expressions transcribe the :class:`ProcessorState`
    properties term by term (``res-difference`` is ``(U_HH + U_res) -
    U_LH``, the property's evaluation order), and the sort keys match
    ``worst_fit_by``/``best_fit_by`` including the index tie-break.
    """
    kind = spec[0]
    if kind == "first":
        return range(m)
    metric_name = spec[1]
    if metric_name == "difference":
        metric = [c[j] - b[j] for j in range(m)]
    elif metric_name == "res-difference":
        metric = [(c[j] + res[j]) - b[j] for j in range(m)]
    elif metric_name == "u-hh":
        metric = list(c)
    elif metric_name == "u-lo":
        metric = [a[j] + b[j] for j in range(m)]
    else:
        raise ValueError(f"unknown fit metric {metric_name!r}")
    if kind == "worst":
        return sorted(range(m), key=lambda j: (metric[j], j))
    if kind == "best":
        return sorted(range(m), key=lambda j: (-metric[j], j))
    raise ValueError(f"unknown fit spec {spec!r}")


def _set_lists(batch: TaskSetBatch, index: int, u_res_column):
    """Per-set plain-Python columns, cached on the batch across algorithms."""
    lists = batch.replay_cache.get(index)
    if lists is None:
        rows = batch.set_slice(index)
        u_lo = batch.u_lo[rows].tolist()
        u_hi = batch.u_hi[rows].tolist()
        is_high = batch.is_high[rows].tolist()
        implicit_task = (batch.deadline[rows] == batch.period[rows]).tolist()
        res_task = (
            u_res_column[rows].tolist() if u_res_column is not None else None
        )
        u_own = [
            u_hi[i] if is_high[i] else u_lo[i] for i in range(len(u_lo))
        ]
        lists = (u_lo, u_hi, is_high, implicit_task, res_task, u_own)
        batch.replay_cache[index] = lists
    return lists


def _row_view(batch: TaskSetBatch, index: int):
    """Per-set :class:`~repro.analysis.prefilter.RowView`, cached."""
    from repro.analysis.prefilter import RowView

    view = batch.replay_cache.get(("rows", index))
    if view is None:
        rows = batch.set_slice(index)
        service = batch.service_model
        view = RowView(
            period=batch.period[rows].tolist(),
            wcet_lo=batch.wcet_lo[rows].tolist(),
            wcet_hi=batch.wcet_hi[rows].tolist(),
            deadline=batch.deadline[rows].tolist(),
            is_high=batch.is_high[rows].tolist(),
            degraded=service is not None and not service.is_full_drop,
        )
        batch.replay_cache[("rows", index)] = view
    return view


def _replay_set(
    batch: TaskSetBatch,
    index: int,
    m: int,
    screen: ProbeScreen,
    strategy: PartitioningStrategy,
    u_res_column,
) -> bool | None:
    """Columnar replay of one set's allocation walk; None = undecidable."""
    u_lo, u_hi, is_high, implicit_task, res_task, u_own = _set_lists(
        batch, index, u_res_column
    )
    n = len(u_lo)
    ties = _tiebreak(batch, index, n)
    order = _order_indices(
        strategy.order_spec, n, is_high, u_own, u_lo, ties
    )
    view = _row_view(batch, index) if screen.uses_rows else None

    a = [0.0] * m
    b = [0.0] * m
    c = [0.0] * m
    res = [0.0] * m
    implicit = [True] * m
    members: list[list[int]] = [[] for _ in range(m)]
    for i in order:
        high = is_high[i]
        spec = strategy.hc_fit_spec if high else strategy.lc_fit_spec
        placed = False
        for j in _fit_indices(spec, m, a, b, c, res):
            ca, cb, cc, cres = a[j], b[j], c[j], res[j]
            if high:
                cb += u_lo[i]
                cc += u_hi[i]
            else:
                ca += u_lo[i]
                if res_task is not None:
                    cres += res_task[i]
            if view is not None:
                verdict = screen.decide_rows(
                    ca,
                    cb,
                    cc,
                    cres,
                    implicit[j] and implicit_task[i],
                    members[j],
                    i,
                    view,
                )
            else:
                verdict = screen.decide(
                    ca, cb, cc, cres, implicit[j] and implicit_task[i]
                )
            if verdict is None:
                return None
            if verdict:
                a[j], b[j], c[j], res[j] = ca, cb, cc, cres
                implicit[j] = implicit[j] and implicit_task[i]
                members[j].append(i)
                placed = True
                break
        if not placed:
            return False
    return True


def _tiebreak(batch: TaskSetBatch, index: int, n: int) -> list[int]:
    """Per-task sort tie-break equal to the task-id order.

    A set already materialized (or built from existing task sets) carries
    real task ids; an unmaterialized generated set will be materialized in
    column order, which assigns strictly increasing ids — so the local row
    index induces the identical tie-break order.
    """
    ts = batch._sets.get(index)
    if ts is not None:
        return [t.task_id for t in ts]
    return list(range(n))


def partition_batch(
    batch: TaskSetBatch,
    m: int,
    test: SchedulabilityTest,
    strategy: PartitioningStrategy,
    *,
    incremental: bool = True,
    bank: PrefilterBank | None = None,
) -> BatchPartitionOutcome:
    """Partition every set of ``batch``; see module docstring.

    ``accepted[i]`` equals ``partition(batch.taskset(i), m, test, strategy,
    incremental=incremental).success`` for every set — the settling layers
    only change *how cheaply* the boolean is obtained.  Raises
    :class:`UnsupportedTasksetError` up front when the batch violates the
    test's model assumptions (the batch-level twin of the scalar gates) and
    ``ValueError`` when ``m`` is not positive.
    """
    if m <= 0:
        raise ValueError(f"m must be positive, got {m}")
    outcome = BatchPartitionOutcome()
    if len(batch) == 0:
        return outcome
    _validate_batch_support(batch, test, strategy)

    if bank is None:
        bank = default_prefilter_bank()
    report = bank.apply(batch, m, test)

    screen = test.batch_screen()
    replay = screen is not None and strategy.replayable
    service = batch.service_model
    degraded = service is not None and not service.is_full_drop
    u_res_column = batch.u_res if degraded else None

    for i in range(len(batch)):
        source = report.settled[i]
        if source is not None:
            outcome.accepted.append(False)
            outcome.settled.append(source)
            continue
        verdict: bool | None = None
        if replay:
            verdict = _replay_set(batch, i, m, screen, strategy, u_res_column)
        if verdict is not None:
            outcome.accepted.append(verdict)
            outcome.settled.append("ledger")
            continue
        result = partition(
            batch.taskset(i), m, test, strategy, incremental=incremental
        )
        outcome.accepted.append(result.success)
        outcome.settled.append("full")
    if _obs.active():
        # Counters total across runs; the histograms keep the per-run
        # settle distribution (one observation per stage per batch).
        for source, count in outcome.settled_counts().items():
            _obs.REGISTRY.add(f"prefilter.{source}", count)
            _obs.REGISTRY.observe(f"prefilter.{source}.settled", float(count))
    return outcome
