"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Draw a task set from the fair generator and print/save it as JSON.
``check``
    Run a uniprocessor schedulability test on a task-set JSON file.
``partition``
    Partition a task-set JSON file with a named strategy + test.
``simulate``
    Validate an accepted task set against the adversarial scenario battery.
``figure``
    Run one of the paper's figure experiments and print its tables.
``sensitivity``
    Run the utilization-difference sensitivity extension experiment.

Every command is a thin veneer over the library API — anything the CLI can
do, three lines of Python can do too (see README quickstart).
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.analysis import get_test, registered_tests
from repro.core import get_strategy, partition, registered_strategies
from repro.generator import MCTaskSetGenerator
from repro.model import TaskSet
from repro.util.rng import derive_rng

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Utilization-difference based partitioned MC scheduling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a task set (JSON)")
    gen.add_argument("--m", type=int, default=4)
    gen.add_argument("--uhh", type=float, required=True)
    gen.add_argument("--ulh", type=float, required=True)
    gen.add_argument("--ull", type=float, required=True)
    gen.add_argument("--ph", type=float, default=0.5)
    gen.add_argument(
        "--deadline", choices=("implicit", "constrained"), default="implicit"
    )
    gen.add_argument("--nmin", type=int, default=None, help="min task count")
    gen.add_argument("--nmax", type=int, default=None, help="max task count")
    gen.add_argument("--seed", default="cli")
    gen.add_argument("-o", "--output", help="write JSON here (default stdout)")

    check = sub.add_parser("check", help="run a schedulability test")
    check.add_argument("taskset", help="task-set JSON file ('-' for stdin)")
    check.add_argument(
        "--test", choices=registered_tests(), default="ecdf"
    )

    part = sub.add_parser("partition", help="partition a task set")
    part.add_argument("taskset", help="task-set JSON file ('-' for stdin)")
    part.add_argument("--m", type=int, default=4)
    part.add_argument(
        "--strategy", choices=registered_strategies(), default="cu-udp"
    )
    part.add_argument("--test", choices=registered_tests(), default="edf-vd")

    simulate = sub.add_parser(
        "simulate", help="validate an accepted set by simulation"
    )
    simulate.add_argument("taskset", help="task-set JSON file ('-' for stdin)")
    simulate.add_argument(
        "--test", choices=registered_tests(), default="ecdf"
    )
    simulate.add_argument("--horizon", type=int, default=20_000)
    simulate.add_argument("--seed", default="cli-sim")

    figure = sub.add_parser("figure", help="run a paper figure experiment")
    figure.add_argument(
        "name", choices=("fig3", "fig4", "fig5", "fig6a", "fig6b")
    )
    figure.add_argument("--samples", type=int, default=None)
    figure.add_argument(
        "--m", default=None, help="comma-separated processor counts"
    )

    sens = sub.add_parser(
        "sensitivity", help="utilization-difference sensitivity sweep"
    )
    sens.add_argument("--m", type=int, default=4)
    sens.add_argument("--samples", type=int, default=20)

    return parser


def _load_taskset(path: str) -> TaskSet:
    if path == "-":
        return TaskSet.from_dicts(json.load(sys.stdin))
    with open(path, encoding="utf-8") as handle:
        return TaskSet.from_dicts(json.load(handle))


def _cmd_generate(args) -> int:
    generator = MCTaskSetGenerator(
        m=args.m,
        p_high=args.ph,
        deadline_type=args.deadline,
        n_min=args.nmin,
        n_max=args.nmax,
    )
    rng = derive_rng("cli-generate", args.seed)
    taskset = generator.generate(rng, args.uhh, args.ulh, args.ull)
    if taskset is None:
        print("generation failed: targets infeasible", file=sys.stderr)
        return 1
    payload = json.dumps(taskset.to_dicts(), indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {len(taskset)} tasks to {args.output}", file=sys.stderr)
    else:
        print(payload)
    return 0


def _cmd_check(args) -> int:
    taskset = _load_taskset(args.taskset)
    test = get_test(args.test)
    result = test.analyze(taskset)
    verdict = "SCHEDULABLE" if result.schedulable else "NOT SCHEDULABLE"
    print(f"{test.name}: {verdict}")
    if result.detail:
        print(f"  detail: {result.detail}")
    if result.schedulable and result.virtual_deadlines:
        print(f"  virtual deadlines: {result.virtual_deadlines}")
    if result.schedulable and result.scaling_factor != 1.0:
        print(f"  scaling factor: {result.scaling_factor:.4f}")
    return 0 if result.schedulable else 2


def _cmd_partition(args) -> int:
    taskset = _load_taskset(args.taskset)
    result = partition(
        taskset, args.m, get_test(args.test), get_strategy(args.strategy)
    )
    print(result.describe())
    return 0 if result.success else 2


def _cmd_simulate(args) -> int:
    from repro.sim import validate_against_simulation

    taskset = _load_taskset(args.taskset)
    test = get_test(args.test)
    if not test.is_schedulable(taskset):
        print(f"{test.name} rejects this task set; nothing to validate")
        return 2
    violations = validate_against_simulation(
        taskset, test, derive_rng("cli-sim", args.seed), horizon=args.horizon
    )
    if violations:
        print(f"UNSOUND: {len(violations)} MC violations found:")
        for label, miss in violations[:10]:
            print(f"  [{label}] {miss}")
        return 3
    print(
        f"validated: no MC violation across the scenario battery "
        f"(horizon {args.horizon})"
    )
    return 0


def _cmd_figure(args) -> int:
    from repro.experiments import run_figure
    from repro.experiments.report import render_figure

    kwargs = {}
    if args.m:
        kwargs["m_values"] = tuple(int(v) for v in args.m.split(","))
    result = run_figure(args.name, samples=args.samples, **kwargs)
    print(render_figure(result))
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.experiments.algorithms import get_algorithm
    from repro.experiments.sensitivity import difference_sensitivity

    algorithms = [
        get_algorithm("cu-udp-edf-vd"),
        get_algorithm("ca-nosort-f-f-edf-vd"),
    ]
    result = difference_sensitivity(
        algorithms, m=args.m, samples=args.samples
    )
    print(result.render())
    gaps = result.advantage("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")
    print()
    print(
        "UDP advantage per squeeze ratio: "
        + ", ".join(f"{g:+.3f}" for g in gaps)
    )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "check": _cmd_check,
    "partition": _cmd_partition,
    "simulate": _cmd_simulate,
    "figure": _cmd_figure,
    "sensitivity": _cmd_sensitivity,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
