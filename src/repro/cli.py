"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Draw a task set from the fair generator and print/save it as JSON.
``check``
    Run a uniprocessor schedulability test on a task-set JSON file.
``partition``
    Partition a task-set JSON file with a named strategy + test.
``simulate``
    Validate an accepted task set against the adversarial scenario battery.
``figure``
    Run one of the paper's figure experiments and print its tables
    (``--jobs N`` fans buckets out over a worker pool; ``--cache-dir``
    makes the run resumable).  With ``REPRO_OBS`` set, the collected
    metrics snapshot (and, under ``trace``, the Chrome-trace span dump)
    are written alongside the tables.
``campaign``
    Run a whole set of figures through the parallel, resumable campaign
    engine and save their JSON results.
``trace``
    Run a figure with the tracing recorder forced on and write the
    Chrome-trace span dump (open it in Perfetto or ``about:tracing``)
    plus the obs metrics snapshot.
``status``
    Render a live (or final) view of a campaign's event journal —
    workers alive, per-sweep progress, fault counters, shard-latency
    quantiles and stragglers.  ``--follow`` tails a running campaign
    from a second terminal.
``report``
    Aggregate one or more journals into per-figure throughput/latency
    tables, optionally diffed against a baseline journal or committed
    ``BENCH_*.json`` artifact; exits non-zero past the regression
    threshold (a ready-made CI perf gate).
``sensitivity``
    Run the utilization-difference sensitivity extension experiment.

Every command is a thin veneer over the library API — anything the CLI can
do, three lines of Python can do too (see README quickstart).
"""

from __future__ import annotations

import argparse
import json
import os
import sys

from repro.analysis import get_test, registered_tests
from repro.core import get_strategy, partition, registered_strategies
from repro.generator import MCTaskSetGenerator
from repro.model import TaskSet
from repro.util.rng import derive_rng

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Utilization-difference based partitioned MC scheduling",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    gen = sub.add_parser("generate", help="generate a task set (JSON)")
    gen.add_argument("--m", type=int, default=4)
    gen.add_argument("--uhh", type=float, required=True)
    gen.add_argument("--ulh", type=float, required=True)
    gen.add_argument("--ull", type=float, required=True)
    gen.add_argument("--ph", type=float, default=0.5)
    gen.add_argument(
        "--deadline", choices=("implicit", "constrained"), default="implicit"
    )
    gen.add_argument("--nmin", type=int, default=None, help="min task count")
    gen.add_argument("--nmax", type=int, default=None, help="max task count")
    gen.add_argument(
        "--degradation-factor",
        type=float,
        default=None,
        help="per-task degraded LC budgets: wcet_degraded = floor(f * C_L)",
    )
    gen.add_argument("--seed", default="cli")
    gen.add_argument("-o", "--output", help="write JSON here (default stdout)")

    service_help = (
        "LC service model in HI mode: full-drop (default), "
        "imprecise:<rho> or elastic:<lambda>"
    )

    check = sub.add_parser("check", help="run a schedulability test")
    check.add_argument("taskset", help="task-set JSON file ('-' for stdin)")
    check.add_argument(
        "--test", choices=registered_tests(), default="ecdf"
    )
    check.add_argument("--service", default="full-drop", help=service_help)

    part = sub.add_parser("partition", help="partition a task set")
    part.add_argument("taskset", help="task-set JSON file ('-' for stdin)")
    part.add_argument("--m", type=int, default=4)
    part.add_argument(
        "--strategy", choices=registered_strategies(), default="cu-udp"
    )
    part.add_argument("--test", choices=registered_tests(), default="edf-vd")
    part.add_argument("--service", default="full-drop", help=service_help)

    simulate = sub.add_parser(
        "simulate", help="validate an accepted set by simulation"
    )
    simulate.add_argument("taskset", help="task-set JSON file ('-' for stdin)")
    simulate.add_argument(
        "--test", choices=registered_tests(), default="ecdf"
    )
    simulate.add_argument("--service", default="full-drop", help=service_help)
    simulate.add_argument("--horizon", type=int, default=20_000)
    simulate.add_argument("--seed", default="cli-sim")

    figure = sub.add_parser("figure", help="run a paper figure experiment")
    figure.add_argument(
        "name",
        choices=("fig3", "fig4", "fig5", "fig6a", "fig6b", "fig7a", "fig7b"),
    )
    figure.add_argument("--samples", type=int, default=None)
    figure.add_argument(
        "--m", default=None, help="comma-separated processor counts"
    )
    figure.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = all cores, default 1 = serial)",
    )
    figure.add_argument(
        "--cache-dir",
        default=None,
        help="shard cache directory; reruns resume instead of recomputing",
    )
    figure.add_argument(
        "--backend",
        choices=("serial", "pool", "cluster"),
        default=None,
        help=(
            "executor backend (default: REPRO_RUNNER_BACKEND, else serial "
            "for --jobs 1 and pool otherwise); 'cluster' adds work-stealing "
            "with heartbeat/lease fault recovery — results are identical"
        ),
    )
    figure.add_argument(
        "--store",
        choices=("fs", "object"),
        default=None,
        help=(
            "shard-store layout under --cache-dir (default: "
            "REPRO_RUNNER_STORE, else fs); 'object' is the flat "
            "content-keyed bucket multiple hosts can share"
        ),
    )
    figure.add_argument(
        "-o", "--output", default=None, help="also save the result JSON here"
    )
    figure.add_argument(
        "--progress", action="store_true", help="live shard progress on stderr"
    )
    figure.add_argument(
        "--pipeline",
        choices=("batched", "scalar"),
        default="batched",
        help=(
            "sweep execution pipeline: 'batched' (columnar prefilters + "
            "ledger replay, default) or 'scalar' (per-taskset); results "
            "are identical"
        ),
    )
    figure.add_argument(
        "--demand-kernel",
        choices=("forward", "qpa", "vec", "block"),
        default=None,
        help=(
            "demand-kernel stack for the dbf analyses (default: "
            "REPRO_DBF_KERNEL, else qpa); exported to workers; results "
            "are bit-identical across kernels — see README"
        ),
    )
    figure.add_argument(
        "--obs-out",
        default=None,
        help=(
            "metrics snapshot path when REPRO_OBS is on "
            "(default BENCH_obs.json)"
        ),
    )
    figure.add_argument(
        "--trace-out",
        default=None,
        help=(
            "Chrome-trace path when REPRO_OBS=trace "
            "(default repro-trace.json)"
        ),
    )
    figure.add_argument(
        "--journal",
        default=None,
        help=(
            "append-only JSONL event journal for this run (exported as "
            "REPRO_OBS_JOURNAL so workers inherit it); watch it live "
            "with 'repro status --follow'"
        ),
    )

    campaign = sub.add_parser(
        "campaign", help="run a figure campaign (parallel + resumable)"
    )
    campaign.add_argument(
        "spec",
        nargs="?",
        default=None,
        help="campaign spec JSON; omit to run every figure of the paper",
    )
    campaign.add_argument(
        "--figures",
        default=None,
        help="comma-separated figure names (alternative to a spec file)",
    )
    campaign.add_argument("--samples", type=int, default=None)
    campaign.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = all cores, default 1 = serial)",
    )
    campaign.add_argument(
        "--out", default="campaign-results", help="output directory"
    )
    campaign.add_argument(
        "--cache-dir",
        default=None,
        help="shard cache directory (default: <out>/cache)",
    )
    campaign.add_argument(
        "--backend",
        choices=("serial", "pool", "cluster"),
        default=None,
        help=(
            "executor backend (default: REPRO_RUNNER_BACKEND, else serial "
            "for --jobs 1 and pool otherwise); 'cluster' adds work-stealing "
            "with heartbeat/lease fault recovery — results are identical"
        ),
    )
    campaign.add_argument(
        "--store",
        choices=("fs", "object"),
        default=None,
        help=(
            "shard-store layout (default: REPRO_RUNNER_STORE, else fs); "
            "'object' is the flat content-keyed bucket multiple hosts can "
            "share via --cache-dir on common storage"
        ),
    )
    campaign.add_argument(
        "--no-progress",
        action="store_true",
        help="suppress the live progress line",
    )
    campaign.add_argument(
        "--pipeline",
        choices=("batched", "scalar"),
        default="batched",
        help=(
            "sweep execution pipeline: 'batched' (columnar prefilters + "
            "ledger replay, default) or 'scalar' (per-taskset); results "
            "are identical"
        ),
    )
    campaign.add_argument(
        "--demand-kernel",
        choices=("forward", "qpa", "vec", "block"),
        default=None,
        help=(
            "demand-kernel stack for the dbf analyses (default: "
            "REPRO_DBF_KERNEL, else qpa); exported to workers; results "
            "are bit-identical across kernels — see README"
        ),
    )
    campaign.add_argument(
        "--journal",
        nargs="?",
        const="auto",
        default=None,
        help=(
            "append-only JSONL event journal (exported as "
            "REPRO_OBS_JOURNAL so every worker writes it too); bare "
            "--journal defaults to <out>/journal.jsonl; watch it live "
            "with 'repro status --follow'"
        ),
    )

    status = sub.add_parser(
        "status", help="live status of a campaign from its event journal"
    )
    status.add_argument("journal", help="journal file a campaign is writing")
    status.add_argument(
        "--follow",
        action="store_true",
        help="keep tailing the journal until the campaign ends (Ctrl-C to stop)",
    )
    status.add_argument(
        "--interval",
        type=float,
        default=None,
        help="poll interval in seconds (default: REPRO_OBS_JOURNAL_FLUSH)",
    )
    status.add_argument(
        "--straggler-factor",
        type=float,
        default=None,
        help=(
            "flag in-flight units older than k x the running shard-seconds "
            "p95 (default: REPRO_OBS_STRAGGLER, else 4.0)"
        ),
    )

    rep = sub.add_parser(
        "report",
        help="aggregate event journals; diff runs against a baseline",
    )
    rep.add_argument(
        "journals", nargs="+", help="one or more campaign journal files"
    )
    rep.add_argument(
        "--baseline",
        default=None,
        help=(
            "baseline to diff every journal against: another journal or a "
            "committed BENCH_*.json artifact; without it, the first "
            "journal is the baseline for the rest"
        ),
    )
    rep.add_argument(
        "--threshold",
        type=float,
        default=None,
        help=(
            "max tolerated fractional drift before exiting non-zero "
            "(default 0.2; CI uses a generous value for noisy runners)"
        ),
    )

    trace = sub.add_parser(
        "trace",
        help="run a figure with tracing forced on; write the span dump",
    )
    trace.add_argument(
        "name",
        choices=("fig3", "fig4", "fig5", "fig6a", "fig6b", "fig7a", "fig7b"),
    )
    trace.add_argument("--samples", type=int, default=None)
    trace.add_argument(
        "--m", default=None, help="comma-separated processor counts"
    )
    trace.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (0 = all cores, default 1 = serial)",
    )
    trace.add_argument(
        "--pipeline", choices=("batched", "scalar"), default="batched"
    )
    trace.add_argument(
        "--demand-kernel",
        choices=("forward", "qpa", "vec", "block"),
        default=None,
        help=(
            "demand-kernel stack for the dbf analyses (default: "
            "REPRO_DBF_KERNEL, else qpa); results are bit-identical"
        ),
    )
    trace.add_argument(
        "--backend",
        choices=("serial", "pool", "cluster"),
        default=None,
        help="executor backend (default: REPRO_RUNNER_BACKEND, else auto)",
    )
    trace.add_argument(
        "--trace-out",
        default="repro-trace.json",
        help="Chrome-trace output path (Perfetto / about:tracing)",
    )
    trace.add_argument(
        "--obs-out",
        default="BENCH_obs.json",
        help="metrics snapshot output path",
    )

    sens = sub.add_parser(
        "sensitivity", help="utilization-difference sensitivity sweep"
    )
    sens.add_argument("--m", type=int, default=4)
    sens.add_argument("--samples", type=int, default=20)

    return parser


def _load_taskset(path: str, service: str = "full-drop") -> TaskSet:
    if path == "-":
        taskset = TaskSet.from_dicts(json.load(sys.stdin))
    else:
        with open(path, encoding="utf-8") as handle:
            taskset = TaskSet.from_dicts(json.load(handle))
    if service and service != "full-drop":
        from repro.degradation import parse_service_model

        taskset = taskset.with_service_model(parse_service_model(service))
    return taskset


def _cmd_generate(args) -> int:
    generator = MCTaskSetGenerator(
        m=args.m,
        p_high=args.ph,
        deadline_type=args.deadline,
        n_min=args.nmin,
        n_max=args.nmax,
        degradation_factor=args.degradation_factor,
    )
    rng = derive_rng("cli-generate", args.seed)
    taskset = generator.generate(rng, args.uhh, args.ulh, args.ull)
    if taskset is None:
        print("generation failed: targets infeasible", file=sys.stderr)
        return 1
    payload = json.dumps(taskset.to_dicts(), indent=2)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(payload + "\n")
        print(f"wrote {len(taskset)} tasks to {args.output}", file=sys.stderr)
    else:
        print(payload)
    return 0


def _require_service_support(test, taskset) -> None:
    """Exit with a clear error when ``test`` cannot honor the service model.

    ``partition`` and the sweep harness gate this themselves; the direct
    ``check``/``simulate`` paths would otherwise silently analyze a
    degraded task set with drop-at-switch semantics.
    """
    service = taskset.service_model
    if not test.supports_service_model(service):
        raise SystemExit(
            f"test {test.name!r} does not analyze LC tasks under the "
            f"{service.spec()!r} service model (e.g. the AMC analyses "
            "assume drop-at-switch); pick edf-vd/ey/ecdf or drop --service"
        )


def _cmd_check(args) -> int:
    taskset = _load_taskset(args.taskset, args.service)
    test = get_test(args.test)
    _require_service_support(test, taskset)
    result = test.analyze(taskset)
    verdict = "SCHEDULABLE" if result.schedulable else "NOT SCHEDULABLE"
    print(f"{test.name}: {verdict}")
    if result.detail:
        print(f"  detail: {result.detail}")
    if result.schedulable and result.virtual_deadlines:
        print(f"  virtual deadlines: {result.virtual_deadlines}")
    if result.schedulable and result.scaling_factor != 1.0:
        print(f"  scaling factor: {result.scaling_factor:.4f}")
    return 0 if result.schedulable else 2


def _cmd_partition(args) -> int:
    taskset = _load_taskset(args.taskset, args.service)
    result = partition(
        taskset, args.m, get_test(args.test), get_strategy(args.strategy)
    )
    print(result.describe())
    return 0 if result.success else 2


def _cmd_simulate(args) -> int:
    from repro.sim import validate_against_simulation

    taskset = _load_taskset(args.taskset, args.service)
    test = get_test(args.test)
    _require_service_support(test, taskset)
    if not test.is_schedulable(taskset):
        print(f"{test.name} rejects this task set; nothing to validate")
        return 2
    violations = validate_against_simulation(
        taskset, test, derive_rng("cli-sim", args.seed), horizon=args.horizon
    )
    if violations:
        print(f"UNSOUND: {len(violations)} MC violations found:")
        for label, miss in violations[:10]:
            print(f"  [{label}] {miss}")
        return 3
    print(
        f"validated: no MC violation across the scenario battery "
        f"(horizon {args.horizon})"
    )
    return 0


def _resolve_jobs(jobs: int) -> int:
    from repro.runner import default_jobs

    if jobs < 0:
        raise SystemExit(f"--jobs must be >= 0, got {jobs}")
    return default_jobs() if jobs == 0 else jobs


def _apply_demand_kernel(kernel: str | None) -> None:
    """Apply ``--demand-kernel`` to this process and its future workers.

    Exporting ``REPRO_DBF_KERNEL`` makes pool/cluster workers (fork or
    spawn) initialise on the requested kernel; ``set_demand_kernel``
    switches the conductor process itself.  ``None`` (flag not passed)
    leaves the env/default resolution untouched, so the documented order
    instance > CLI > env > default holds.
    """
    if kernel is None:
        return
    from repro.analysis.dbf import set_demand_kernel

    os.environ["REPRO_DBF_KERNEL"] = kernel
    set_demand_kernel(kernel)


def _write_obs_outputs(obs_out: str | None, trace_out: str | None) -> None:
    """Persist the obs snapshot (and span dump under tracing), if recording.

    A no-op with ``REPRO_OBS`` off, so plain runs never touch the
    filesystem beyond what they always wrote.
    """
    from repro import obs

    if obs.active():
        path = obs_out or "BENCH_obs.json"
        snapshot = obs.to_json(obs.REGISTRY, obs.spans(), mode=obs.mode())
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        print(f"wrote obs snapshot to {path}", file=sys.stderr)
    if obs.tracing():
        path = obs.write_chrome_trace(obs.spans(), trace_out or "repro-trace.json")
        print(f"wrote chrome trace to {path}", file=sys.stderr)


def _cmd_figure(args) -> int:
    from repro import obs
    from repro.experiments import run_figure
    from repro.experiments.acceptance import kernel_summary
    from repro.experiments.export import save_figure_result
    from repro.experiments.report import render_figure, render_sweep_diagnostics
    from repro.obs.journal import emit_open, journal_env
    from repro.runner import ProgressReporter, create_store
    from repro.util.env import runner_store_from_env

    _apply_demand_kernel(args.demand_kernel)
    kwargs = {}
    if args.m:
        kwargs["m_values"] = tuple(int(v) for v in args.m.split(","))
    store_kind = args.store if args.store else runner_store_from_env()
    cache = create_store(store_kind, args.cache_dir) if args.cache_dir else None
    progress = ProgressReporter(label=args.name) if args.progress else None
    diagnostics: list = []
    # The registry is cumulative per process; a baseline keeps the printed
    # kernel diagnostics scoped to this run (relevant to tests and embeds —
    # a fresh CLI process starts at zero anyway).
    kernel_baseline = obs.REGISTRY.counters("kernel.")
    with journal_env(args.journal) as jrnl:
        if jrnl is not None:
            emit_open(jrnl, campaign=f"figure:{args.name}")
        result = run_figure(
            args.name,
            samples=args.samples,
            jobs=_resolve_jobs(args.jobs),
            cache=cache,
            progress=progress,
            pipeline=args.pipeline,
            backend=args.backend,
            diagnostics=diagnostics,
            **kwargs,
        )
        if jrnl is not None:
            # close the record so `repro status` shows "finished"
            jrnl.emit("campaign-end", campaign=f"figure:{args.name}")
    if progress is not None:
        progress.finish()
    if args.output:
        save_figure_result(result, args.output)
        print(f"wrote {args.output}", file=sys.stderr)
    print(render_figure(result))
    rendered = render_sweep_diagnostics(
        diagnostics, kernels=kernel_summary(since=kernel_baseline)
    )
    if rendered:
        print(rendered, file=sys.stderr)
    _write_obs_outputs(args.obs_out, args.trace_out)
    return 0


def _cmd_trace(args) -> int:
    from repro import obs
    from repro.experiments import run_figure

    _apply_demand_kernel(args.demand_kernel)
    kwargs = {}
    if args.m:
        kwargs["m_values"] = tuple(int(v) for v in args.m.split(","))
    previous = obs.set_recorder(obs.TraceRecorder(obs.REGISTRY))
    try:
        run_figure(
            args.name,
            samples=args.samples,
            jobs=_resolve_jobs(args.jobs),
            pipeline=args.pipeline,
            backend=args.backend,
            **kwargs,
        )
        table = obs.render_table(obs.REGISTRY, obs.spans())
        if table:
            print(table)
        _write_obs_outputs(args.obs_out, args.trace_out)
        return 0
    finally:
        obs.set_recorder(previous)


def _cmd_campaign(args) -> int:
    from repro.runner import (
        CampaignSpec,
        FigureJob,
        ProgressReporter,
        run_campaign,
    )

    _apply_demand_kernel(args.demand_kernel)
    if args.spec and args.figures:
        raise SystemExit("pass either a spec file or --figures, not both")
    try:
        if args.spec:
            spec = CampaignSpec.from_json_file(args.spec)
            if args.samples is not None:
                raise SystemExit("--samples belongs in the spec file")
        elif args.figures:
            jobs_list = tuple(
                FigureJob(name.strip(), samples=args.samples)
                for name in args.figures.split(",")
                if name.strip()
            )
            spec = CampaignSpec(name="cli-campaign", figures=jobs_list)
        else:
            spec = CampaignSpec.paper_evaluation(samples=args.samples)
    except (ValueError, KeyError, TypeError, OSError) as exc:
        raise SystemExit(f"invalid campaign: {exc}") from None

    journal = args.journal
    if journal == "auto":
        # Bare --journal: one JSONL file per campaign, next to its outputs.
        journal = os.path.join(args.out, "journal.jsonl")

    progress = None if args.no_progress else ProgressReporter(label=spec.name)
    report = run_campaign(
        spec,
        args.out,
        jobs=_resolve_jobs(args.jobs),
        cache_dir=args.cache_dir,
        progress=progress,
        pipeline=args.pipeline,
        backend=args.backend,
        store=args.store,
        journal=journal,
    )
    figure_word = "figure" if len(report.outputs) == 1 else "figures"
    print(
        f"campaign {spec.name!r}: {len(report.outputs)} {figure_word} -> "
        f"{args.out} ({report.shards_computed} shards computed, "
        f"{report.shards_cached} from cache)"
    )
    for key, path in report.outputs.items():
        print(f"  {key}: {path}")
    if journal:
        print(f"  journal: {journal}")
    return 0


def _cmd_status(args) -> int:
    import time

    from repro.obs.journal import JournalFollower, read_events
    from repro.obs.status import CampaignStatus, render_status
    from repro.util.env import journal_flush_interval_from_env

    if args.straggler_factor is not None and args.straggler_factor < 1.0:
        raise SystemExit(
            f"--straggler-factor must be >= 1, got {args.straggler_factor}"
        )
    status = CampaignStatus(straggler_factor=args.straggler_factor)
    if not args.follow:
        try:
            status.absorb(read_events(args.journal))
        except FileNotFoundError as exc:
            raise SystemExit(str(exc)) from None
        print(render_status(status))
        return 0

    interval = (
        args.interval
        if args.interval is not None
        else journal_flush_interval_from_env()
    )
    if interval <= 0:
        raise SystemExit(f"--interval must be positive, got {interval}")
    follower = JournalFollower(args.journal)
    try:
        while True:
            events = follower.poll()
            if events:
                status.absorb(events)
            print(render_status(status))
            if status.ended:
                return 0
            print()
            time.sleep(interval)
    except KeyboardInterrupt:
        return 0


def _cmd_report(args) -> int:
    from repro.obs.report import (
        DEFAULT_THRESHOLD,
        compare_runs,
        load_baseline,
        render_report,
        summarize_journal,
    )

    threshold = (
        args.threshold if args.threshold is not None else DEFAULT_THRESHOLD
    )
    if threshold <= 0:
        raise SystemExit(f"--threshold must be positive, got {threshold}")
    try:
        summaries = [summarize_journal(path) for path in args.journals]
        if args.baseline:
            baseline = load_baseline(args.baseline)
            targets = summaries
        elif len(summaries) > 1:
            # No explicit baseline: the first journal anchors the rest.
            baseline, targets = summaries[0], summaries[1:]
        else:
            baseline, targets = None, []
    except (OSError, ValueError) as exc:
        raise SystemExit(f"cannot load journal/baseline: {exc}") from None
    comparisons = None
    if baseline is not None:
        comparisons = []
        for summary in targets:
            comparisons.extend(compare_runs(summary, baseline, threshold))
    print(render_report(summaries, comparisons, threshold))
    regressed = [c for c in comparisons or () if c.regressed]
    if regressed:
        print(
            f"REGRESSION: {len(regressed)} metric(s) drifted past "
            f"threshold {threshold:g}",
            file=sys.stderr,
        )
        return 4
    return 0


def _cmd_sensitivity(args) -> int:
    from repro.experiments.algorithms import get_algorithm
    from repro.experiments.sensitivity import difference_sensitivity

    algorithms = [
        get_algorithm("cu-udp-edf-vd"),
        get_algorithm("ca-nosort-f-f-edf-vd"),
    ]
    result = difference_sensitivity(
        algorithms, m=args.m, samples=args.samples
    )
    print(result.render())
    gaps = result.advantage("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")
    print()
    print(
        "UDP advantage per squeeze ratio: "
        + ", ".join(f"{g:+.3f}" for g in gaps)
    )
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "check": _cmd_check,
    "partition": _cmd_partition,
    "simulate": _cmd_simulate,
    "figure": _cmd_figure,
    "campaign": _cmd_campaign,
    "status": _cmd_status,
    "report": _cmd_report,
    "trace": _cmd_trace,
    "sensitivity": _cmd_sensitivity,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except BrokenPipeError:
        # stdout went away mid-print (e.g. `repro status ... | head`);
        # detach it so the interpreter's shutdown flush can't raise too.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
