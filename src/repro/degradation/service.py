"""LO-criticality service models — what happens to LC tasks in HI mode.

The classical Vestal interpretation (and the DATE 2017 paper) *drops* every
LC task at the mode switch.  Two well-studied relaxations keep LC tasks
alive at a reduced service level instead:

* **Imprecise / degraded budgets** (Burns & Baruah; Liu et al., "EDF-VD
  scheduling of mixed-criticality systems with degraded quality
  guarantees"; Gu & Easwaran, arXiv:2004.02400): an LC task keeps a reduced
  HI-mode budget ``C^HI = floor(rho * C^LO)`` per job.
* **Elastic periods** (Su & Zhu, DATE 2013; Chen et al., arXiv:1711.00100):
  an LC task keeps its full budget but its period (and deadline) is
  stretched by a factor ``lambda`` in HI mode, shrinking its HI-mode rate
  to ``u / lambda``.

A :class:`ServiceModel` captures one such policy as three per-task
quantities — the HI-mode budget, period and deadline of an LC task — from
which every layer derives what it needs:

* the *residual utilization* ``u^res = C^HI / T^HI`` feeds the extended
  EDF-VD utilization test and the residual-aware UDP difference metric;
* the HI-mode sporadic abstraction ``(C^HI, T^HI)`` (with carry-over
  reduction budget ``C^LO``) feeds the dbf-based EY/ECDF analyses;
* the simulator policies truncate budgets / stretch releases accordingly.

``FullDrop`` is the neutral element: residual utilization 0, no HI-mode
demand, drop-at-switch runtime semantics — every consumer treats it (and a
missing service model) exactly as the historical behavior, bit-identically.

Per-task overrides: an :class:`~repro.model.task.MCTask` may carry explicit
``wcet_degraded`` / ``period_degraded`` fields (e.g. filled in by the
generator's ``degradation_factor`` knob); models consult those before their
own formula, so heterogeneous degradation coexists with the uniform knobs.
"""

from __future__ import annotations

import abc
import math
from typing import TYPE_CHECKING, Callable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.model.task import MCTask
    from repro.model.taskset import TaskSet

__all__ = [
    "ServiceModel",
    "FullDrop",
    "ImpreciseBudget",
    "ElasticPeriod",
    "FULL_DROP",
    "parse_service_model",
    "register_service_model",
    "registered_service_models",
]


class ServiceModel(abc.ABC):
    """HI-mode service contract for LC tasks; see module docstring.

    Instances are immutable value objects: equality and hashing go through
    :meth:`key`, and :meth:`spec` round-trips through
    :func:`parse_service_model` (the form carried by sweep configs, cache
    keys and the CLI).
    """

    #: short stable identifier (the spec prefix)
    name: str = "abstract"

    # -- the contract -------------------------------------------------------
    @abc.abstractmethod
    def degraded_budget(self, task: "MCTask") -> int:
        """HI-mode per-job budget of LC ``task`` (0 = dropped)."""

    def degraded_period(self, task: "MCTask") -> int:
        """HI-mode minimum release separation of LC ``task``."""
        return task.period

    def degraded_deadline(self, task: "MCTask") -> int:
        """HI-mode relative deadline of LC ``task``.

        Stretched by the same absolute amount as the period, which keeps
        implicit deadlines implicit and constrained deadlines constrained.
        """
        return task.deadline + (self.degraded_period(task) - task.period)

    # -- derived quantities -------------------------------------------------
    @property
    def is_full_drop(self) -> bool:
        """True when this model reproduces drop-at-switch semantics."""
        return False

    def residual_utilization(self, task: "MCTask") -> float:
        """HI-mode utilization an LC ``task`` retains (0.0 for HC tasks)."""
        if task.is_high:
            return 0.0
        budget = self.degraded_budget(task)
        if budget <= 0:
            return 0.0
        return budget / self.degraded_period(task)

    def lc_hi_parameters(self, task: "MCTask") -> tuple[int, int] | None:
        """``(budget, period)`` of ``task``'s HI-mode sporadic abstraction.

        None when the task contributes no HI-mode demand (HC tasks are the
        analyses' business; LC tasks with a zero budget are dropped).  The
        budget is clamped to ``C^LO`` — no service model may *increase* an
        LC task's per-job demand.
        """
        if task.is_high:
            return None
        budget = min(self.degraded_budget(task), task.wcet_lo)
        if budget <= 0:
            return None
        return budget, self.degraded_period(task)

    # -- identity -----------------------------------------------------------
    @abc.abstractmethod
    def key(self) -> tuple:
        """Hashable identity; equal keys mean interchangeable models."""

    def spec(self) -> str:
        """Parseable string form (inverse of :func:`parse_service_model`)."""
        parts = self.key()
        if len(parts) == 1:
            return parts[0]
        return f"{parts[0]}:{parts[1]}"

    def describe(self) -> str:
        """Short human-readable label for reports."""
        return self.spec()

    def apply(self, taskset: "TaskSet") -> "TaskSet":
        """``taskset`` with this service model attached (tasks untouched)."""
        return taskset.with_service_model(self)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServiceModel):
            return NotImplemented
        return self.key() == other.key()

    def __hash__(self) -> int:
        return hash(self.key())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} {self.spec()!r}>"


class FullDrop(ServiceModel):
    """The classical model: LC tasks are abandoned at the mode switch."""

    name = "full-drop"

    def degraded_budget(self, task: "MCTask") -> int:
        return 0

    @property
    def is_full_drop(self) -> bool:
        return True

    def key(self) -> tuple:
        return ("full-drop",)


class ImpreciseBudget(ServiceModel):
    """Imprecise-MC model: LC tasks keep ``floor(rho * C^LO)`` in HI mode.

    ``rho = 0`` degenerates to dropping every LC job (but is *not*
    ``is_full_drop`` — it still exercises the degradation machinery, which
    the consistency tests rely on); ``rho = 1`` keeps full LC service.
    A task's explicit ``wcet_degraded`` field overrides the formula.
    """

    name = "imprecise"

    def __init__(self, rho: float):
        if not 0.0 <= rho <= 1.0:
            raise ValueError(f"rho must be in [0, 1], got {rho}")
        self.rho = float(rho)

    def degraded_budget(self, task: "MCTask") -> int:
        if task.is_high:
            return task.wcet_hi
        if task.wcet_degraded is not None:
            return task.wcet_degraded
        return int(math.floor(self.rho * task.wcet_lo))

    def key(self) -> tuple:
        return ("imprecise", self.rho)


class ElasticPeriod(ServiceModel):
    """Elastic model: LC periods stretch by ``lambda`` in HI mode.

    Budgets stay at ``C^LO``; the HI-mode rate shrinks to ``u / lambda``.
    A task's explicit ``period_degraded`` field overrides the formula.
    """

    name = "elastic"

    def __init__(self, stretch: float):
        if stretch < 1.0:
            raise ValueError(f"stretch factor must be >= 1, got {stretch}")
        self.stretch = float(stretch)

    def degraded_budget(self, task: "MCTask") -> int:
        return task.wcet_hi if task.is_high else task.wcet_lo

    def degraded_period(self, task: "MCTask") -> int:
        if task.is_high:
            return task.period
        if task.period_degraded is not None:
            return task.period_degraded
        return int(math.ceil(self.stretch * task.period))

    def key(self) -> tuple:
        return ("elastic", self.stretch)


#: Shared default instance (stateless, safe to share).
FULL_DROP = FullDrop()


_MODELS: dict[str, Callable[[str | None], ServiceModel]] = {}


def register_service_model(
    name: str, factory: Callable[[str | None], ServiceModel]
) -> None:
    """Register a service-model factory under its spec prefix.

    ``factory`` receives the text after the ``:`` in a spec (None when the
    spec is the bare name) and returns a model instance.
    """
    _MODELS[name] = factory


def registered_service_models() -> tuple[str, ...]:
    """Names of all registered service models, sorted."""
    return tuple(sorted(_MODELS))


def _require_param(name: str, param: str | None) -> float:
    if param is None:
        raise ValueError(
            f"service model {name!r} needs a parameter, e.g. {name}:0.5"
        )
    try:
        return float(param)
    except ValueError:
        raise ValueError(
            f"invalid parameter {param!r} for service model {name!r}"
        ) from None


register_service_model(
    "full-drop",
    lambda param: FULL_DROP
    if param is None
    else (_ for _ in ()).throw(ValueError("full-drop takes no parameter")),
)
register_service_model(
    "imprecise", lambda param: ImpreciseBudget(_require_param("imprecise", param))
)
register_service_model(
    "elastic", lambda param: ElasticPeriod(_require_param("elastic", param))
)


def parse_service_model(
    spec: "str | ServiceModel | None",
) -> ServiceModel:
    """Coerce ``spec`` to a :class:`ServiceModel`.

    Accepts an existing model, None/'' (→ :data:`FULL_DROP`) or a spec
    string ``name`` / ``name:param`` (e.g. ``imprecise:0.5``,
    ``elastic:2.0``).
    """
    if spec is None or spec == "":
        return FULL_DROP
    if isinstance(spec, ServiceModel):
        return spec
    if not isinstance(spec, str):
        raise TypeError(
            f"service model spec must be a string or ServiceModel, "
            f"got {type(spec).__name__}"
        )
    name, _, param = spec.partition(":")
    try:
        factory = _MODELS[name]
    except KeyError:
        known = ", ".join(registered_service_models())
        raise ValueError(
            f"unknown service model {name!r}; known models: {known}"
        ) from None
    return factory(param if param != "" else None)
