"""Graceful LO-criticality service degradation (system S13).

This package parameterizes *what happens to LC tasks at the mode switch*.
The rest of the pipeline — model, analyses, partitioning, simulation,
experiments — consumes a :class:`~repro.degradation.service.ServiceModel`
carried by the :class:`~repro.model.taskset.TaskSet` under test:

* :class:`~repro.degradation.service.FullDrop` — the paper's (and the
  historical) drop-at-switch semantics; the default everywhere, with
  bit-identical results to the pre-degradation code paths.
* :class:`~repro.degradation.service.ImpreciseBudget` — LC tasks keep a
  reduced HI-mode budget ``floor(rho * C^LO)`` (imprecise-MC model).
* :class:`~repro.degradation.service.ElasticPeriod` — LC periods stretch
  by ``lambda`` in HI mode (elastic task model).

See the README's "Service models & scenario matrix" section for which
analyses and runtimes support which models.
"""

from repro.degradation.service import (
    FULL_DROP,
    ElasticPeriod,
    FullDrop,
    ImpreciseBudget,
    ServiceModel,
    parse_service_model,
    register_service_model,
    registered_service_models,
)

__all__ = [
    "FULL_DROP",
    "ElasticPeriod",
    "FullDrop",
    "ImpreciseBudget",
    "ServiceModel",
    "parse_service_model",
    "register_service_model",
    "registered_service_models",
]
