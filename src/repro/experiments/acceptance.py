"""Acceptance-ratio sweeps over the paper's utilization grid.

The paper's core experiment: for each value of the total normalized
utilization ``UB``, generate many task sets (1000 in the paper) from the
grid combinations mapping to that ``UB`` and report, per partitioned
algorithm, the fraction deemed schedulable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.generator import (
    GeneratorConfig,
    GridPoint,
    MCTaskSetGenerator,
    UtilizationGrid,
)
from repro.model import TaskSet
from repro.util.rng import derive_rng
from repro.experiments.algorithms import PartitionedAlgorithm

__all__ = [
    "SweepConfig",
    "SweepResult",
    "BucketOutcome",
    "AcceptanceSweep",
    "merge_outcomes",
    "validate_algorithms",
]


def validate_algorithms(
    config: "SweepConfig", algorithms: list[PartitionedAlgorithm]
) -> None:
    """Reject (algorithm, deadline type/service model) pairings the tests
    cannot analyze.

    Called at sweep setup (and by the campaign decomposition before any
    worker spawns), so e.g. EDF-VD against a constrained-deadline sweep, or
    AMC against a degraded-service sweep, fails immediately with a clear
    error instead of raising from deep inside the analysis mid-campaign.
    """
    from repro.degradation.service import parse_service_model

    service = parse_service_model(config.service)
    for algorithm in algorithms:
        if not algorithm.test.supports_deadline_type(config.deadline_type):
            raise ValueError(
                f"algorithm {algorithm.name!r} cannot run on a "
                f"deadline_type={config.deadline_type!r} sweep: test "
                f"{algorithm.test.name!r} does not support it "
                f"(sweep label {config.label!r})"
            )
        if not algorithm.test.supports_service_model(service):
            raise ValueError(
                f"algorithm {algorithm.name!r} cannot run on a "
                f"service={config.service!r} sweep: test "
                f"{algorithm.test.name!r} does not analyze LC tasks under "
                f"that service model (sweep label {config.label!r})"
            )


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one acceptance-ratio sweep (one sub-figure)."""

    label: str  #: seed namespace; also used in reports
    m: int
    deadline_type: str = "implicit"
    p_high: float = 0.5
    samples_per_bucket: int = 100
    bucket_width: float = 0.05
    ub_min: float = 0.0  #: skip buckets below this UB (all-accept region)
    ub_max: float = 1.0
    #: LC service model spec applied to every generated task set
    #: (``"full-drop"``, ``"imprecise:<rho>"`` or ``"elastic:<lambda>"``);
    #: the default reproduces the paper's drop-at-switch semantics exactly
    #: — task-set generation itself is service-agnostic, so curves across
    #: service values share the same task-set sample
    service: str = "full-drop"


@dataclass
class SweepResult:
    """Acceptance ratios per ``UB`` bucket per algorithm."""

    config: SweepConfig
    buckets: list[float] = field(default_factory=list)
    samples: list[int] = field(default_factory=list)
    ratios: dict[str, list[float]] = field(default_factory=dict)

    def _series(self, algorithm: str) -> list[float]:
        try:
            return self.ratios[algorithm]
        except KeyError:
            known = ", ".join(sorted(self.ratios)) or "(none)"
            raise KeyError(
                f"unknown algorithm {algorithm!r}; this sweep ran: {known}"
            ) from None

    def ratio_curve(self, algorithm: str) -> list[tuple[float, float]]:
        """``(UB, acceptance ratio)`` series for one algorithm.

        Raises ``ValueError`` when the series length disagrees with the
        bucket axis (e.g. a stale cache shard merged from a different
        bucket grid) — a silently truncated curve would misreport the
        sweep, so the mismatch fails loudly instead.
        """
        try:
            return list(zip(self.buckets, self._series(algorithm), strict=True))
        except ValueError:
            raise ValueError(
                f"series for {algorithm!r} has "
                f"{len(self._series(algorithm))} entries but the sweep has "
                f"{len(self.buckets)} buckets; the merged outcomes are "
                "inconsistent (stale or foreign cache shard?)"
            ) from None

    def max_improvement(self, algorithm: str, baseline: str) -> float:
        """Largest acceptance-ratio gain of ``algorithm`` over ``baseline``.

        Expressed in percentage points over the swept buckets — the
        "improves schedulability by as much as X%" statistic the paper
        headlines.  Mismatched series lengths raise ``ValueError`` rather
        than silently truncating the comparison.
        """
        series_a = self._series(algorithm)
        series_b = self._series(baseline)
        try:
            gains = [a - b for a, b in zip(series_a, series_b, strict=True)]
        except ValueError:
            raise ValueError(
                f"series for {algorithm!r} ({len(series_a)} entries) and "
                f"{baseline!r} ({len(series_b)} entries) disagree in "
                "length; the merged outcomes are inconsistent "
                "(stale or foreign cache shard?)"
            ) from None
        return 100.0 * max(gains, default=0.0)


def merge_outcomes(
    config: SweepConfig,
    algorithm_names: list[str],
    outcomes: list["BucketOutcome"],
) -> SweepResult:
    """Assemble per-bucket shards into the result the serial sweep produces.

    Outcomes may arrive in any order (e.g. from a worker pool); they are
    sorted by bucket and empty buckets are dropped, exactly mirroring the
    serial loop, so the merged result is bit-identical to a serial run.
    """
    result = SweepResult(config, ratios={name: [] for name in algorithm_names})
    for outcome in sorted(outcomes, key=lambda o: o.bucket):
        if outcome.samples == 0:
            continue
        result.buckets.append(outcome.bucket)
        result.samples.append(outcome.samples)
        for name in algorithm_names:
            result.ratios[name].append(outcome.ratios[name])
    return result


@dataclass(frozen=True)
class BucketOutcome:
    """One sweep shard: acceptance ratios for a single ``UB`` bucket.

    This is the unit of work the campaign runner distributes, caches and
    merges (see :mod:`repro.runner`): the whole sweep is a deterministic
    function of its per-bucket outcomes.  ``ratios`` preserves the
    algorithm order of the sweep.
    """

    bucket: float
    samples: int  #: task sets actually generated (0 = bucket infeasible)
    ratios: dict[str, float]


class AcceptanceSweep:
    """Runs algorithms over generated task sets, bucketed by ``UB``.

    Task sets are generated once per (bucket, replicate) and shared by all
    algorithms, matching the paper's methodology (every algorithm sees the
    same 1000 task sets).  Generation is deterministic in
    ``(label, m, deadline_type, p_high, bucket, replicate)``, so every
    bucket can be computed in isolation (see :meth:`run_bucket`) — in any
    order, in any process — and reassembled into the exact result the
    serial :meth:`run` produces.
    """

    def __init__(self, config: SweepConfig, grid: UtilizationGrid | None = None):
        from repro.degradation.service import parse_service_model

        self.config = config
        self.grid = grid or UtilizationGrid()
        self._service = parse_service_model(config.service)
        self._generator = MCTaskSetGenerator(
            GeneratorConfig(
                m=config.m,
                p_high=config.p_high,
                deadline_type=config.deadline_type,
            )
        )

    # -- task-set provisioning -------------------------------------------------
    def tasksets_for_bucket(
        self, bucket: float, points: list[GridPoint]
    ) -> list[TaskSet]:
        """The deterministic task-set sample for one ``UB`` bucket.

        Generation is independent of the service model (the RNG stream is
        untouched by it), so sweeps differing only in ``service`` evaluate
        their algorithms on the *same* task sets — the degradation figures
        compare service levels, not sampling noise.  A non-default model is
        attached to each generated set afterwards.
        """
        cfg = self.config
        out: list[TaskSet] = []
        attach = not self._service.is_full_drop
        for replicate in range(cfg.samples_per_bucket):
            rng = derive_rng(
                cfg.label, cfg.m, cfg.deadline_type, cfg.p_high, bucket, replicate
            )
            # A few attempts across grid points: some (point, n) draws are
            # infeasible (e.g. U_HH too concentrated for the task count).
            for _ in range(6):
                point = points[int(rng.integers(len(points)))]
                taskset = self._generator.generate(
                    rng, point.u_hh, point.u_lh, point.u_ll
                )
                if taskset is not None:
                    if attach:
                        taskset = taskset.with_service_model(self._service)
                    out.append(taskset)
                    break
        return out

    # -- sweeping -----------------------------------------------------------------
    def bucket_points(self) -> dict[float, list[GridPoint]]:
        """Grid points per swept bucket, ascending, filtered to the UB range."""
        cfg = self.config
        return {
            bucket: points
            for bucket, points in self.grid.buckets(cfg.bucket_width).items()
            if cfg.ub_min <= bucket <= cfg.ub_max
        }

    def run_bucket(
        self,
        bucket: float,
        points: list[GridPoint],
        algorithms: list[PartitionedAlgorithm],
    ) -> BucketOutcome:
        """Run every algorithm over one bucket's task-set sample (one shard)."""
        cfg = self.config
        validate_algorithms(cfg, algorithms)
        tasksets = self.tasksets_for_bucket(bucket, points)
        ratios: dict[str, float] = {}
        if tasksets:
            for algorithm in algorithms:
                accepted = sum(algorithm.accepts(ts, cfg.m) for ts in tasksets)
                ratios[algorithm.name] = accepted / len(tasksets)
        return BucketOutcome(bucket=bucket, samples=len(tasksets), ratios=ratios)

    def run(self, algorithms: list[PartitionedAlgorithm]) -> SweepResult:
        """Full sweep; see class docstring."""
        outcomes = [
            self.run_bucket(bucket, points, algorithms)
            for bucket, points in self.bucket_points().items()
        ]
        return merge_outcomes(self.config, [a.name for a in algorithms], outcomes)
