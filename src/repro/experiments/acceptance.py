"""Acceptance-ratio sweeps over the paper's utilization grid.

The paper's core experiment: for each value of the total normalized
utilization ``UB``, generate many task sets (1000 in the paper) from the
grid combinations mapping to that ``UB`` and report, per partitioned
algorithm, the fraction deemed schedulable.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.generator import (
    GeneratorConfig,
    GridPoint,
    MCTaskSetGenerator,
    UtilizationGrid,
)
from repro.model import TaskSet
from repro.util.rng import derive_rng
from repro.experiments.algorithms import PartitionedAlgorithm

__all__ = ["SweepConfig", "SweepResult", "AcceptanceSweep"]


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one acceptance-ratio sweep (one sub-figure)."""

    label: str  #: seed namespace; also used in reports
    m: int
    deadline_type: str = "implicit"
    p_high: float = 0.5
    samples_per_bucket: int = 100
    bucket_width: float = 0.05
    ub_min: float = 0.0  #: skip buckets below this UB (all-accept region)
    ub_max: float = 1.0


@dataclass
class SweepResult:
    """Acceptance ratios per ``UB`` bucket per algorithm."""

    config: SweepConfig
    buckets: list[float] = field(default_factory=list)
    samples: list[int] = field(default_factory=list)
    ratios: dict[str, list[float]] = field(default_factory=dict)

    def ratio_curve(self, algorithm: str) -> list[tuple[float, float]]:
        """``(UB, acceptance ratio)`` series for one algorithm."""
        return list(zip(self.buckets, self.ratios[algorithm]))

    def max_improvement(self, algorithm: str, baseline: str) -> float:
        """Largest acceptance-ratio gain of ``algorithm`` over ``baseline``.

        Expressed in percentage points over the swept buckets — the
        "improves schedulability by as much as X%" statistic the paper
        headlines.
        """
        gains = [
            a - b
            for a, b in zip(self.ratios[algorithm], self.ratios[baseline])
        ]
        return 100.0 * max(gains, default=0.0)


class AcceptanceSweep:
    """Runs algorithms over generated task sets, bucketed by ``UB``.

    Task sets are generated once per (bucket, replicate) and shared by all
    algorithms, matching the paper's methodology (every algorithm sees the
    same 1000 task sets).  Generation is deterministic in
    ``(label, m, deadline_type, p_high, bucket, replicate)``.
    """

    def __init__(self, config: SweepConfig, grid: UtilizationGrid | None = None):
        self.config = config
        self.grid = grid or UtilizationGrid()
        self._generator = MCTaskSetGenerator(
            GeneratorConfig(
                m=config.m,
                p_high=config.p_high,
                deadline_type=config.deadline_type,
            )
        )

    # -- task-set provisioning -------------------------------------------------
    def tasksets_for_bucket(
        self, bucket: float, points: list[GridPoint]
    ) -> list[TaskSet]:
        """The deterministic task-set sample for one ``UB`` bucket."""
        cfg = self.config
        out: list[TaskSet] = []
        for replicate in range(cfg.samples_per_bucket):
            rng = derive_rng(
                cfg.label, cfg.m, cfg.deadline_type, cfg.p_high, bucket, replicate
            )
            # A few attempts across grid points: some (point, n) draws are
            # infeasible (e.g. U_HH too concentrated for the task count).
            for _ in range(6):
                point = points[int(rng.integers(len(points)))]
                taskset = self._generator.generate(
                    rng, point.u_hh, point.u_lh, point.u_ll
                )
                if taskset is not None:
                    out.append(taskset)
                    break
        return out

    # -- sweeping -----------------------------------------------------------------
    def run(self, algorithms: list[PartitionedAlgorithm]) -> SweepResult:
        """Full sweep; see class docstring."""
        cfg = self.config
        result = SweepResult(cfg, ratios={a.name: [] for a in algorithms})
        for bucket, points in self.grid.buckets(cfg.bucket_width).items():
            if not cfg.ub_min <= bucket <= cfg.ub_max:
                continue
            tasksets = self.tasksets_for_bucket(bucket, points)
            if not tasksets:
                continue
            result.buckets.append(bucket)
            result.samples.append(len(tasksets))
            for algorithm in algorithms:
                accepted = sum(
                    algorithm.accepts(ts, cfg.m) for ts in tasksets
                )
                result.ratios[algorithm.name].append(accepted / len(tasksets))
        return result
