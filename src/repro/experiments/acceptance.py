"""Acceptance-ratio sweeps over the paper's utilization grid.

The paper's core experiment: for each value of the total normalized
utilization ``UB``, generate many task sets (1000 in the paper) from the
grid combinations mapping to that ``UB`` and report, per partitioned
algorithm, the fraction deemed schedulable.

Two pipelines produce the same numbers:

* ``"batched"`` (the default) — task sets are generated straight into a
  columnar :class:`~repro.model.batch.TaskSetBatch` and every algorithm
  runs through :func:`repro.core.batch.partition_batch`: the exact
  prefilter bank and the utilization-ledger replay settle what they can
  from the columns, and only the remaining sets are materialized for the
  incremental per-taskset path;
* ``"scalar"`` — the historical one-taskset-at-a-time loop.

The batched pipeline is bit-identical to the scalar one by construction
(same derived RNG streams, exact-only settling; asserted by the
differential tests), so ratios, WAR tables and shard-cache keys never
depend on the pipeline choice — it is purely a throughput knob.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.generator import (
    GeneratorConfig,
    GridPoint,
    MCTaskSetGenerator,
    UtilizationGrid,
)
from repro.model import TaskSet, TaskSetBatch
from repro.util.rng import derive_rng
from repro.experiments.algorithms import PartitionedAlgorithm

__all__ = [
    "PIPELINES",
    "SweepConfig",
    "SweepResult",
    "BucketOutcome",
    "AcceptanceSweep",
    "kernel_summary",
    "merge_outcomes",
    "settled_summary",
    "validate_algorithms",
]

#: Recognized sweep execution pipelines (see module docstring).
PIPELINES = ("batched", "scalar")


def validate_algorithms(
    config: "SweepConfig", algorithms: list[PartitionedAlgorithm]
) -> None:
    """Reject (algorithm, deadline type/service model) pairings the tests
    cannot analyze.

    Called at sweep setup (and by the campaign decomposition before any
    worker spawns), so e.g. EDF-VD against a constrained-deadline sweep, or
    AMC against a degraded-service sweep, fails immediately with a clear
    error instead of raising from deep inside the analysis mid-campaign.
    """
    from repro.degradation.service import parse_service_model

    service = parse_service_model(config.service)
    for algorithm in algorithms:
        if not algorithm.test.supports_deadline_type(config.deadline_type):
            raise ValueError(
                f"algorithm {algorithm.name!r} cannot run on a "
                f"deadline_type={config.deadline_type!r} sweep: test "
                f"{algorithm.test.name!r} does not support it "
                f"(sweep label {config.label!r})"
            )
        if not algorithm.test.supports_service_model(service):
            raise ValueError(
                f"algorithm {algorithm.name!r} cannot run on a "
                f"service={config.service!r} sweep: test "
                f"{algorithm.test.name!r} does not analyze LC tasks under "
                f"that service model (sweep label {config.label!r})"
            )


@dataclass(frozen=True)
class SweepConfig:
    """Parameters of one acceptance-ratio sweep (one sub-figure)."""

    label: str  #: seed namespace; also used in reports
    m: int
    deadline_type: str = "implicit"
    p_high: float = 0.5
    samples_per_bucket: int = 100
    bucket_width: float = 0.05
    ub_min: float = 0.0  #: skip buckets below this UB (all-accept region)
    ub_max: float = 1.0
    #: LC service model spec applied to every generated task set
    #: (``"full-drop"``, ``"imprecise:<rho>"`` or ``"elastic:<lambda>"``);
    #: the default reproduces the paper's drop-at-switch semantics exactly
    #: — task-set generation itself is service-agnostic, so curves across
    #: service values share the same task-set sample
    service: str = "full-drop"


@dataclass
class SweepResult:
    """Acceptance ratios per ``UB`` bucket per algorithm."""

    config: SweepConfig
    buckets: list[float] = field(default_factory=list)
    samples: list[int] = field(default_factory=list)
    ratios: dict[str, list[float]] = field(default_factory=dict)

    def _series(self, algorithm: str) -> list[float]:
        try:
            return self.ratios[algorithm]
        except KeyError:
            known = ", ".join(sorted(self.ratios)) or "(none)"
            raise KeyError(
                f"unknown algorithm {algorithm!r}; this sweep ran: {known}"
            ) from None

    def ratio_curve(self, algorithm: str) -> list[tuple[float, float]]:
        """``(UB, acceptance ratio)`` series for one algorithm.

        Raises ``ValueError`` when the series length disagrees with the
        bucket axis (e.g. a stale cache shard merged from a different
        bucket grid) — a silently truncated curve would misreport the
        sweep, so the mismatch fails loudly instead.
        """
        try:
            return list(zip(self.buckets, self._series(algorithm), strict=True))
        except ValueError:
            raise ValueError(
                f"series for {algorithm!r} has "
                f"{len(self._series(algorithm))} entries but the sweep has "
                f"{len(self.buckets)} buckets; the merged outcomes are "
                "inconsistent (stale or foreign cache shard?)"
            ) from None

    def max_improvement(self, algorithm: str, baseline: str) -> float:
        """Largest acceptance-ratio gain of ``algorithm`` over ``baseline``.

        Expressed in percentage points over the swept buckets — the
        "improves schedulability by as much as X%" statistic the paper
        headlines.  Mismatched series lengths raise ``ValueError`` rather
        than silently truncating the comparison.
        """
        series_a = self._series(algorithm)
        series_b = self._series(baseline)
        try:
            gains = [a - b for a, b in zip(series_a, series_b, strict=True)]
        except ValueError:
            raise ValueError(
                f"series for {algorithm!r} ({len(series_a)} entries) and "
                f"{baseline!r} ({len(series_b)} entries) disagree in "
                "length; the merged outcomes are inconsistent "
                "(stale or foreign cache shard?)"
            ) from None
        return 100.0 * max(gains, default=0.0)


def merge_outcomes(
    config: SweepConfig,
    algorithm_names: list[str],
    outcomes: list["BucketOutcome"],
) -> SweepResult:
    """Assemble per-bucket shards into the result the serial sweep produces.

    Outcomes may arrive in any order (e.g. from a worker pool); they are
    sorted by bucket and empty buckets are dropped, exactly mirroring the
    serial loop, so the merged result is bit-identical to a serial run.
    """
    result = SweepResult(config, ratios={name: [] for name in algorithm_names})
    for outcome in sorted(outcomes, key=lambda o: o.bucket):
        if outcome.samples == 0:
            continue
        result.buckets.append(outcome.bucket)
        result.samples.append(outcome.samples)
        for name in algorithm_names:
            result.ratios[name].append(outcome.ratios[name])
    return result


@dataclass(frozen=True)
class BucketOutcome:
    """One sweep shard: acceptance ratios for a single ``UB`` bucket.

    This is the unit of work the campaign runner distributes, caches and
    merges (see :mod:`repro.runner`): the whole sweep is a deterministic
    function of its per-bucket outcomes.  ``ratios`` preserves the
    algorithm order of the sweep.

    The columnar fields are diagnostics riding along with the shard:
    ``accepted`` holds the integer acceptance counts the ratios derive
    from (``ratio = accepted / samples``, the very division both pipelines
    perform), and ``settled`` reports, per algorithm, how many sets each
    batched-pipeline mechanism settled (prefilter names, ``"ledger"``,
    ``"full"``).  Both are None for scalar-pipeline shards and for shards
    loaded from caches that predate them — consumers must not rely on
    their presence.
    """

    bucket: float
    samples: int  #: task sets actually generated (0 = bucket infeasible)
    ratios: dict[str, float]
    #: none of the diagnostics participate in outcome equality — two shards
    #: with the same ratios are the same shard, however they were settled
    accepted: dict[str, int] | None = field(default=None, compare=False)
    settled: dict[str, dict[str, int]] | None = field(
        default=None, compare=False
    )


def settled_summary(outcomes: list["BucketOutcome"]) -> dict[str, dict[str, int]]:
    """Aggregate per-algorithm settled counts over many shards.

    Shards without settling diagnostics (scalar pipeline, cache loads)
    contribute nothing; the result maps algorithm name to the summed
    per-mechanism counts — the sweep-level "settled-by-prefilter" report
    the benchmark prints.
    """
    summary: dict[str, dict[str, int]] = {}
    for outcome in outcomes:
        if not outcome.settled:
            continue
        for name, counts in outcome.settled.items():
            into = summary.setdefault(name, {})
            for source, count in counts.items():
                into[source] = into.get(source, 0) + count
    return summary


def kernel_summary(
    since: dict[str, float] | None = None,
) -> dict[str, dict[str, float]]:
    """Per-algorithm demand-kernel diagnostics from the obs registry.

    The batched shard runner records per-algorithm ``kernel.<algorithm>.
    <counter>`` deltas into :data:`repro.obs.REGISTRY` (workers ship theirs
    through the pool), and this folds them back into the report shape the
    ``--pipeline`` diagnostics and the dbf-kernel benchmark print: the
    ``qpa-accept`` / ``approx-accept`` / ``approx-reject`` settle counters,
    with the run/iteration totals collapsed to ``qpa-iter-mean`` (mean
    backward fixed-point iterations per QPA search).  The vec kernel's
    speculation scope (``kernel.vec.*``) folds the same way: raw
    ``spec-hit`` / ``spec-waste`` settles plus the batch/width totals
    collapsed to ``spec-width-mean`` (mean candidates per batch).

    With recording on (``REPRO_OBS`` at ``metrics`` or above) a
    ``descent`` row is added from the ``descent.iterations`` histogram —
    trajectory lengths per tuning probe as ``iters-count`` /
    ``iters-p50`` / ``iters-p95`` / ``iters-p99`` — the per-probe view
    the block kernel's fewer-iterations claim is measured by.

    The registry accumulates for the process lifetime; pass ``since`` (an
    earlier ``REGISTRY.counters("kernel.")`` snapshot) to report only what
    one run contributed.  Shards loaded from cache contribute nothing,
    exactly as before the registry migration.  (``since`` baselines the
    *counters*; the histogram row is always lifetime-to-date — quantiles
    do not subtract.)
    """
    from repro import obs as _obs

    counters = _obs.REGISTRY.counters("kernel.")
    baseline = since or {}
    summary: dict[str, dict[str, float]] = {}
    for name, value in counters.items():
        value -= baseline.get(name, 0)
        if not value:
            continue
        _, algorithm, key = name.split(".", 2)
        summary.setdefault(algorithm, {})[key] = value
    for counts in summary.values():
        runs = counts.pop("qpa-runs", 0)
        iterations = counts.pop("qpa-iterations", 0)
        if runs:
            counts["qpa-iter-mean"] = round(iterations / runs, 2)
        batches = counts.pop("spec-batches", 0)
        width = counts.pop("spec-width", 0)
        if batches:
            counts["spec-width-mean"] = round(width / batches, 2)
    histogram = _obs.REGISTRY.histogram("descent.iterations")
    if histogram is not None:
        stats = histogram.summary()
        if stats["count"]:
            summary["descent"] = {
                "iters-count": stats["count"],
                "iters-p50": stats["p50"],
                "iters-p95": stats["p95"],
                "iters-p99": stats["p99"],
            }
    return summary


class AcceptanceSweep:
    """Runs algorithms over generated task sets, bucketed by ``UB``.

    Task sets are generated once per (bucket, replicate) and shared by all
    algorithms, matching the paper's methodology (every algorithm sees the
    same 1000 task sets).  Generation is deterministic in
    ``(label, m, deadline_type, p_high, bucket, replicate)``, so every
    bucket can be computed in isolation (see :meth:`run_bucket`) — in any
    order, in any process — and reassembled into the exact result the
    serial :meth:`run` produces.
    """

    def __init__(
        self,
        config: SweepConfig,
        grid: UtilizationGrid | None = None,
        pipeline: str = "batched",
    ):
        from repro.degradation.service import parse_service_model

        if pipeline not in PIPELINES:
            raise ValueError(
                f"unknown pipeline {pipeline!r}; choose from {PIPELINES}"
            )
        self.config = config
        self.grid = grid or UtilizationGrid()
        self.pipeline = pipeline
        self._service = parse_service_model(config.service)
        self._generator = MCTaskSetGenerator(
            GeneratorConfig(
                m=config.m,
                p_high=config.p_high,
                deadline_type=config.deadline_type,
            )
        )
        #: one prefilter bank per algorithm name — a bank memoizes
        #: test-specific verdicts, so it must never be shared across tests
        self._banks: dict[str, object] = {}

    # -- task-set provisioning -------------------------------------------------
    def batch_for_bucket(
        self, bucket: float, points: list[GridPoint]
    ) -> TaskSetBatch:
        """The deterministic task-set sample for one bucket, as columns.

        Generation is independent of the service model (the RNG stream is
        untouched by it), so sweeps differing only in ``service`` evaluate
        their algorithms on the *same* task sets — the degradation figures
        compare service levels, not sampling noise.  A non-default model
        rides on the batch and is attached to whatever materializes.
        """
        cfg = self.config
        columns = []
        for replicate in range(cfg.samples_per_bucket):
            rng = derive_rng(
                cfg.label, cfg.m, cfg.deadline_type, cfg.p_high, bucket, replicate
            )
            # A few attempts across grid points: some (point, n) draws are
            # infeasible (e.g. U_HH too concentrated for the task count).
            for _ in range(6):
                point = points[int(rng.integers(len(points)))]
                cols = self._generator.generate_columns(
                    rng, point.u_hh, point.u_lh, point.u_ll
                )
                if cols is not None:
                    columns.append(cols)
                    break
        service = None if self._service.is_full_drop else self._service
        return TaskSetBatch(columns, service_model=service)

    def tasksets_for_bucket(
        self, bucket: float, points: list[GridPoint]
    ) -> list[TaskSet]:
        """The bucket sample as materialized task sets (the object view).

        Same draws, same derived RNG streams as :meth:`batch_for_bucket` —
        this is simply its materialization, kept for per-taskset consumers
        (benchmarks, examples, the scalar pipeline).
        """
        return self.batch_for_bucket(bucket, points).to_tasksets()

    # -- sweeping -----------------------------------------------------------------
    def bucket_points(self) -> dict[float, list[GridPoint]]:
        """Grid points per swept bucket, ascending, filtered to the UB range."""
        cfg = self.config
        return {
            bucket: points
            for bucket, points in self.grid.buckets(cfg.bucket_width).items()
            if cfg.ub_min <= bucket <= cfg.ub_max
        }

    def run_bucket(
        self,
        bucket: float,
        points: list[GridPoint],
        algorithms: list[PartitionedAlgorithm],
    ) -> BucketOutcome:
        """Run every algorithm over one bucket's task-set sample (one shard)."""
        cfg = self.config
        validate_algorithms(cfg, algorithms)
        if self.pipeline == "batched":
            return self._run_bucket_batched(bucket, points, algorithms)
        tasksets = self.tasksets_for_bucket(bucket, points)
        ratios: dict[str, float] = {}
        if tasksets:
            for algorithm in algorithms:
                accepted = sum(algorithm.accepts(ts, cfg.m) for ts in tasksets)
                ratios[algorithm.name] = accepted / len(tasksets)
        return BucketOutcome(bucket=bucket, samples=len(tasksets), ratios=ratios)

    def _run_bucket_batched(
        self,
        bucket: float,
        points: list[GridPoint],
        algorithms: list[PartitionedAlgorithm],
    ) -> BucketOutcome:
        """Columnar shard execution; same numbers as the scalar loop.

        Each algorithm's acceptance count comes from
        :func:`~repro.core.batch.partition_batch` over one shared batch.
        The ratio is the identical ``accepted / samples`` division the
        scalar loop performs, so the two pipelines' shards are equal field
        for field (the settling diagnostics ride along, excluded from
        equality-relevant consumers).
        """
        from repro import obs as _obs
        from repro.analysis.dbf import kernel_counters
        from repro.analysis.prefilter import default_prefilter_bank
        from repro.core.batch import partition_batch

        cfg = self.config
        batch = self.batch_for_bucket(bucket, points)
        ratios: dict[str, float] = {}
        accepted: dict[str, int] = {}
        settled: dict[str, dict[str, int]] = {}
        if len(batch):
            for algorithm in algorithms:
                # A bank binds to one test instance; rebind on a fresh
                # instance (e.g. re-fetched algorithms on a reused sweep).
                bank = self._banks.get(algorithm.name)
                if bank is None or not bank.serves(algorithm.test):
                    bank = default_prefilter_bank()
                    self._banks[algorithm.name] = bank
                # Always-on (like the kernel counters themselves): the
                # per-algorithm delta feeds kernel_summary() and the CLI
                # --pipeline diagnostics, which predate the REPRO_OBS knob.
                before = kernel_counters()
                outcome = partition_batch(
                    batch,
                    cfg.m,
                    algorithm.test,
                    algorithm.strategy,
                    bank=bank,
                )
                delta = {
                    key: value - before[key]
                    for key, value in kernel_counters().items()
                    if value != before[key]
                }
                if delta:
                    _obs.REGISTRY.add_counters(
                        {
                            f"kernel.{algorithm.name}.{key}": value
                            for key, value in delta.items()
                        }
                    )
                accepted[algorithm.name] = outcome.accepted_count
                ratios[algorithm.name] = outcome.accepted_count / len(batch)
                settled[algorithm.name] = outcome.settled_counts()
        return BucketOutcome(
            bucket=bucket,
            samples=len(batch),
            ratios=ratios,
            accepted=accepted or None,
            settled=settled or None,
        )

    def run(self, algorithms: list[PartitionedAlgorithm]) -> SweepResult:
        """Full sweep; see class docstring."""
        outcomes = [
            self.run_bucket(bucket, points, algorithms)
            for bucket, points in self.bucket_points().items()
        ]
        return merge_outcomes(self.config, [a.name for a in algorithms], outcomes)
