"""Rendering experiment results as the rows/series the paper reports."""

from __future__ import annotations

import io

from repro.util.tables import format_table
from repro.experiments.acceptance import SweepResult
from repro.experiments.figures import FigureResult

__all__ = [
    "render_sweep",
    "render_war",
    "improvement_summary",
    "render_figure",
    "render_sweep_diagnostics",
    "sweep_to_csv",
]


def render_sweep_diagnostics(outcomes: list, kernels: dict | None = None) -> str:
    """The batched pipeline's settled-by and demand-kernel report.

    One line per algorithm: how many task sets each settling mechanism
    decided (prefilters, ledger replay, full fallback) and the demand-
    kernel counters (screen/QPA settles, mean QPA iterations) accumulated
    while the shards ran.  ``kernels`` is a
    :func:`~repro.experiments.acceptance.kernel_summary` mapping; omit it
    to read the whole obs registry (callers reporting a single run in a
    long-lived process pass a baselined summary instead).  Empty string
    when there are no diagnostics (scalar pipeline, cache-loaded shards).
    """
    from repro.experiments.acceptance import kernel_summary, settled_summary

    settled = settled_summary(outcomes)
    if kernels is None:
        kernels = kernel_summary()
    if not settled and not kernels:
        return ""
    lines = ["pipeline diagnostics (settled-by | demand kernel):"]
    for name in sorted(set(settled) | set(kernels)):
        sources = settled.get(name, {})
        settled_part = (
            " ".join(f"{key}={sources[key]}" for key in sorted(sources))
            or "-"
        )
        counters = kernels.get(name, {})
        kernel_part = (
            " ".join(f"{key}={counters[key]}" for key in sorted(counters))
            or "-"
        )
        lines.append(f"  {name}: {settled_part} | {kernel_part}")
    return "\n".join(lines)


def render_sweep(sweep: SweepResult, title: str | None = None) -> str:
    """Acceptance-ratio table: one row per ``UB`` bucket."""
    headers = ["UB", "sets"] + list(sweep.ratios)
    rows = []
    for idx, bucket in enumerate(sweep.buckets):
        row: list[object] = [f"{bucket:.2f}", sweep.samples[idx]]
        row.extend(sweep.ratios[name][idx] for name in sweep.ratios)
        rows.append(row)
    label = title or (
        f"{sweep.config.label} m={sweep.config.m} "
        f"({sweep.config.deadline_type}, PH={sweep.config.p_high})"
    )
    return format_table(headers, rows, title=label)


#: WAR sweep parameter per figure family: fig6 sweeps the HC-task share
#: PH; the degradation extension sweeps a service-model level.
_WAR_PARAMS = {"fig7a": "rho", "fig7b": "lambda"}


def render_war(result: FigureResult) -> str:
    """Weighted-acceptance-ratio table: one row per (m, swept parameter)."""
    if not result.war:
        raise ValueError(f"{result.figure} carries no WAR data")
    param = _WAR_PARAMS.get(result.figure, "PH")
    algorithms = result.algorithms
    headers = ["m", param] + algorithms
    rows = []
    fmt = "{:.1f}" if param == "PH" else "{:.2f}"
    for (m, value), table in sorted(result.war.items()):
        rows.append([m, fmt.format(value)] + [table[name] for name in algorithms])
    return format_table(headers, rows, title=f"{result.figure}: WAR vs {param}")


def improvement_summary(
    sweep: SweepResult, candidates: list[str], baselines: list[str]
) -> str:
    """Max acceptance-ratio gains — the paper's headline statistic.

    One row per (candidate, baseline) pair with the largest percentage-point
    improvement across the swept ``UB`` buckets.
    """
    rows = []
    for candidate in candidates:
        for baseline in baselines:
            if candidate == baseline:
                continue
            rows.append(
                [candidate, baseline, sweep.max_improvement(candidate, baseline)]
            )
    return format_table(
        ["algorithm", "baseline", "max gain (pp)"],
        rows,
        floatfmt=".1f",
        title=f"max schedulability improvement ({sweep.config.label}, "
        f"m={sweep.config.m})",
    )


def render_figure(result: FigureResult) -> str:
    """Full text report of a figure: sweeps, WAR tables, improvements."""
    parts = []
    for key, sweep in result.sweeps.items():
        parts.append(render_sweep(sweep, title=f"{result.figure} {key}"))
    if result.war:
        parts.append(render_war(result))
    return "\n\n".join(parts)


def sweep_to_csv(sweep: SweepResult) -> str:
    """CSV form of an acceptance sweep (header + one row per bucket)."""
    buffer = io.StringIO()
    names = list(sweep.ratios)
    buffer.write(",".join(["ub", "sets"] + names) + "\n")
    for idx, bucket in enumerate(sweep.buckets):
        cells = [f"{bucket:.3f}", str(sweep.samples[idx])]
        cells += [f"{sweep.ratios[name][idx]:.4f}" for name in names]
        buffer.write(",".join(cells) + "\n")
    return buffer.getvalue()
