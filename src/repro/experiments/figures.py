"""Per-figure experiment configurations and runners.

Each function reproduces one figure of the paper and returns a
:class:`FigureResult` carrying the same series the paper plots.  Scale is
controlled by ``samples`` (task sets per ``UB`` bucket — the paper used
1000) and can also be set via the ``REPRO_SAMPLES`` environment variable;
see :func:`default_samples`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from repro.experiments.acceptance import AcceptanceSweep, SweepConfig, SweepResult
from repro.experiments.algorithms import PartitionedAlgorithm, get_algorithm
from repro.experiments.weighted import weighted_acceptance_ratio

__all__ = [
    "FigureResult",
    "FIGURES",
    "default_samples",
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "run_figure",
]

#: Series of each figure, exactly as plotted in the paper.
FIG3_ALGORITHMS = ("ca-udp-edf-vd", "cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")
FIG45_ALGORITHMS = ("cu-udp-amc", "cu-udp-ecdf", "eca-wu-f-ey", "ca-f-f-ey")
FIG6A_ALGORITHMS = FIG3_ALGORITHMS
FIG6B_ALGORITHMS = (
    "ca-udp-amc",
    "cu-udp-amc",
    "ca-udp-ecdf",
    "cu-udp-ecdf",
    "eca-wu-f-ey",
    "ca-f-f-ey",
)

#: PH values swept by Figure 6.
FIG6_PH_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)
FIG6_M_VALUES = (2, 4)


def default_samples(fallback: int = 100) -> int:
    """Samples per bucket: ``REPRO_SAMPLES`` env var or ``fallback``."""
    raw = os.environ.get("REPRO_SAMPLES", "")
    if raw:
        value = int(raw)
        if value <= 0:
            raise ValueError(f"REPRO_SAMPLES must be positive, got {value}")
        return value
    return fallback


@dataclass
class FigureResult:
    """Everything a figure reports.

    ``sweeps`` holds one :class:`SweepResult` per sub-figure (keyed e.g. by
    ``m=2``); ``war`` holds weighted-acceptance-ratio tables for Figure 6
    (keyed by ``(m, PH)`` then algorithm).
    """

    figure: str
    sweeps: dict[str, SweepResult] = field(default_factory=dict)
    war: dict[tuple[int, float], dict[str, float]] = field(default_factory=dict)

    @property
    def algorithms(self) -> list[str]:
        for sweep in self.sweeps.values():
            return list(sweep.ratios)
        for table in self.war.values():
            return list(table)
        return []


def _algorithms(names: tuple[str, ...]) -> list[PartitionedAlgorithm]:
    return [get_algorithm(name) for name in names]


def _acceptance_figure(
    figure: str,
    algorithm_names: tuple[str, ...],
    deadline_type: str,
    m_values: tuple[int, ...],
    samples: int | None,
) -> FigureResult:
    samples = samples if samples is not None else default_samples()
    result = FigureResult(figure)
    for m in m_values:
        config = SweepConfig(
            label=figure,
            m=m,
            deadline_type=deadline_type,
            samples_per_bucket=samples,
        )
        sweep = AcceptanceSweep(config)
        result.sweeps[f"m={m}"] = sweep.run(_algorithms(algorithm_names))
    return result


def fig3(
    samples: int | None = None, m_values: tuple[int, ...] = (2, 4, 8)
) -> FigureResult:
    """Figure 3: implicit deadlines, EDF-VD algorithms (speed-up bound 8/3)."""
    return _acceptance_figure("fig3", FIG3_ALGORITHMS, "implicit", m_values, samples)


def fig4(
    samples: int | None = None, m_values: tuple[int, ...] = (2, 4, 8)
) -> FigureResult:
    """Figure 4: implicit deadlines, algorithms without a speed-up bound."""
    return _acceptance_figure("fig4", FIG45_ALGORITHMS, "implicit", m_values, samples)


def fig5(
    samples: int | None = None, m_values: tuple[int, ...] = (2, 4, 8)
) -> FigureResult:
    """Figure 5: constrained deadlines, algorithms without a speed-up bound."""
    return _acceptance_figure(
        "fig5", FIG45_ALGORITHMS, "constrained", m_values, samples
    )


def _war_figure(
    figure: str,
    algorithm_names: tuple[str, ...],
    deadline_type: str,
    samples: int | None,
    ph_values: tuple[float, ...],
    m_values: tuple[int, ...],
) -> FigureResult:
    samples = samples if samples is not None else default_samples()
    result = FigureResult(figure)
    algorithms = _algorithms(algorithm_names)
    for m in m_values:
        for ph in ph_values:
            config = SweepConfig(
                label=figure,
                m=m,
                deadline_type=deadline_type,
                p_high=ph,
                samples_per_bucket=samples,
            )
            sweep = AcceptanceSweep(config).run(algorithms)
            result.sweeps[f"m={m},PH={ph}"] = sweep
            result.war[(m, ph)] = {
                name: weighted_acceptance_ratio(sweep.buckets, ratios)
                for name, ratios in sweep.ratios.items()
            }
    return result


def fig6a(
    samples: int | None = None,
    ph_values: tuple[float, ...] = FIG6_PH_VALUES,
    m_values: tuple[int, ...] = FIG6_M_VALUES,
) -> FigureResult:
    """Figure 6a: WAR vs PH, implicit deadlines, EDF-VD algorithms."""
    return _war_figure(
        "fig6a", FIG6A_ALGORITHMS, "implicit", samples, ph_values, m_values
    )


def fig6b(
    samples: int | None = None,
    ph_values: tuple[float, ...] = FIG6_PH_VALUES,
    m_values: tuple[int, ...] = FIG6_M_VALUES,
) -> FigureResult:
    """Figure 6b: WAR vs PH, constrained deadlines, AMC/ECDF vs EY."""
    return _war_figure(
        "fig6b", FIG6B_ALGORITHMS, "constrained", samples, ph_values, m_values
    )


FIGURES = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6a": fig6a,
    "fig6b": fig6b,
}


def run_figure(name: str, samples: int | None = None, **kwargs) -> FigureResult:
    """Dispatch by figure name (``fig3`` ... ``fig6b``)."""
    try:
        runner = FIGURES[name]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(f"unknown figure {name!r}; known: {known}") from None
    return runner(samples=samples, **kwargs)
