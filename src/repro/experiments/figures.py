"""Per-figure experiment configurations and runners.

Each function reproduces one figure of the paper and returns a
:class:`FigureResult` carrying the same series the paper plots.  Scale is
controlled by ``samples`` (task sets per ``UB`` bucket — the paper used
1000) and can also be set via the ``REPRO_SAMPLES`` environment variable;
see :func:`default_samples`.

Every figure is planned declaratively (:func:`figure_plan` returns the
sweeps it needs as :class:`SweepJob` entries) and executed through the
campaign runner (:mod:`repro.runner`): pass ``jobs=N`` to fan buckets out
over a worker pool and ``cache=ShardCache(...)`` to make runs resumable —
results are bit-identical to a serial, uncached run either way.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.experiments.acceptance import SweepConfig, SweepResult
from repro.experiments.weighted import weighted_acceptance_ratio
from repro.util.env import samples_from_env

__all__ = [
    "FigureResult",
    "FIGURES",
    "PAPER_FIGURES",
    "SweepJob",
    "default_samples",
    "figure_plan",
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "run_figure",
]

#: Series of each figure, exactly as plotted in the paper.
FIG3_ALGORITHMS = ("ca-udp-edf-vd", "cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")
FIG45_ALGORITHMS = ("cu-udp-amc", "cu-udp-ecdf", "eca-wu-f-ey", "ca-f-f-ey")
FIG6A_ALGORITHMS = FIG3_ALGORITHMS
FIG6B_ALGORITHMS = (
    "ca-udp-amc",
    "cu-udp-amc",
    "ca-udp-ecdf",
    "cu-udp-ecdf",
    "eca-wu-f-ey",
    "ca-f-f-ey",
)

#: PH values swept by Figure 6.
FIG6_PH_VALUES = (0.1, 0.3, 0.5, 0.7, 0.9)
FIG6_M_VALUES = (2, 4)

#: Degradation sweeps (fig7 — an extension beyond the paper): acceptance
#: ratio and weighted schedulability versus the LO-service degradation
#: level, at the paper's m grid and PH=0.5.  fig7a sweeps the imprecise
#: budget ratio rho (EDF-VD algorithms; rho=0 is equivalent to dropping LC
#: work, rho=1 keeps full LC service in HI mode); fig7b sweeps the elastic
#: period stretch lambda (demand-based ECDF/EY algorithms; lambda=1 keeps
#: full service).  Both run on implicit deadlines: under constrained
#: deadlines the joint carry-over pessimism of the demand tests leaves
#: near-full LC service with almost no acceptance region, which would make
#: the sweep degenerate.
FIG7A_ALGORITHMS = ("cu-udp-edf-vd", "cu-udp-res-edf-vd", "ca-udp-res-edf-vd")
FIG7B_ALGORITHMS = ("cu-udp-ecdf", "cu-udp-res-ecdf", "cu-udp-res-ey")
FIG7_RHO_VALUES = (0.0, 0.25, 0.5, 0.75, 1.0)
FIG7_LAMBDA_VALUES = (1.0, 1.5, 2.0, 4.0)
FIG7_M_VALUES = (2, 4)


def default_samples(fallback: int = 100) -> int:
    """Samples per bucket: ``REPRO_SAMPLES`` env var or ``fallback``."""
    return samples_from_env(fallback)


@dataclass
class FigureResult:
    """Everything a figure reports.

    ``sweeps`` holds one :class:`SweepResult` per sub-figure (keyed e.g. by
    ``m=2``); ``war`` holds weighted-acceptance-ratio tables for Figure 6
    (keyed by ``(m, PH)`` then algorithm).
    """

    figure: str
    sweeps: dict[str, SweepResult] = field(default_factory=dict)
    war: dict[tuple[int, float], dict[str, float]] = field(default_factory=dict)

    @property
    def algorithms(self) -> list[str]:
        for sweep in self.sweeps.values():
            return list(sweep.ratios)
        for table in self.war.values():
            return list(table)
        return []


@dataclass(frozen=True)
class SweepJob:
    """One sweep a figure needs: config + algorithms + result slot.

    The declarative plan unit behind every figure — the campaign runner
    uses plans both to execute figures and to size progress reporting.
    ``war_key`` marks sweeps whose weighted acceptance ratio feeds the
    figure's WAR table (Figure 6).
    """

    key: str
    config: SweepConfig
    algorithms: tuple[str, ...]
    war_key: tuple[int, float] | None = None


def _acceptance_plan(
    figure: str,
    algorithm_names: tuple[str, ...],
    deadline_type: str,
    m_values: tuple[int, ...],
    samples: int | None,
) -> list[SweepJob]:
    samples = samples if samples is not None else default_samples()
    return [
        SweepJob(
            key=f"m={m}",
            config=SweepConfig(
                label=figure,
                m=m,
                deadline_type=deadline_type,
                samples_per_bucket=samples,
            ),
            algorithms=algorithm_names,
        )
        for m in m_values
    ]


def _war_plan(
    figure: str,
    algorithm_names: tuple[str, ...],
    deadline_type: str,
    samples: int | None,
    ph_values: tuple[float, ...],
    m_values: tuple[int, ...],
) -> list[SweepJob]:
    samples = samples if samples is not None else default_samples()
    return [
        SweepJob(
            key=f"m={m},PH={ph}",
            config=SweepConfig(
                label=figure,
                m=m,
                deadline_type=deadline_type,
                p_high=ph,
                samples_per_bucket=samples,
            ),
            algorithms=algorithm_names,
            war_key=(m, ph),
        )
        for m in m_values
        for ph in ph_values
    ]


def _degradation_plan(
    figure: str,
    algorithm_names: tuple[str, ...],
    deadline_type: str,
    service_name: str,
    deg_values: tuple[float, ...],
    m_values: tuple[int, ...],
    samples: int | None,
) -> list[SweepJob]:
    """One sweep per (m, degradation value); WAR keyed by ``(m, value)``.

    All sweeps of one ``m`` share the identical task-set sample (generation
    ignores the service model), so the resulting curves isolate the effect
    of the service level.
    """
    samples = samples if samples is not None else default_samples()
    return [
        SweepJob(
            key=f"m={m},{service_name}={value}",
            config=SweepConfig(
                label=figure,
                m=m,
                deadline_type=deadline_type,
                samples_per_bucket=samples,
                service=f"{service_name}:{value}",
            ),
            algorithms=algorithm_names,
            war_key=(m, value),
        )
        for m in m_values
        for value in deg_values
    ]


_PLANNERS = {
    "fig3": lambda samples, m_values=(2, 4, 8): _acceptance_plan(
        "fig3", FIG3_ALGORITHMS, "implicit", m_values, samples
    ),
    "fig4": lambda samples, m_values=(2, 4, 8): _acceptance_plan(
        "fig4", FIG45_ALGORITHMS, "implicit", m_values, samples
    ),
    "fig5": lambda samples, m_values=(2, 4, 8): _acceptance_plan(
        "fig5", FIG45_ALGORITHMS, "constrained", m_values, samples
    ),
    "fig6a": lambda samples, ph_values=FIG6_PH_VALUES, m_values=FIG6_M_VALUES: _war_plan(
        "fig6a", FIG6A_ALGORITHMS, "implicit", samples, ph_values, m_values
    ),
    "fig6b": lambda samples, ph_values=FIG6_PH_VALUES, m_values=FIG6_M_VALUES: _war_plan(
        "fig6b", FIG6B_ALGORITHMS, "constrained", samples, ph_values, m_values
    ),
    "fig7a": lambda samples, deg_values=FIG7_RHO_VALUES, m_values=FIG7_M_VALUES: _degradation_plan(
        "fig7a", FIG7A_ALGORITHMS, "implicit", "imprecise", deg_values, m_values, samples
    ),
    "fig7b": lambda samples, deg_values=FIG7_LAMBDA_VALUES, m_values=FIG7_M_VALUES: _degradation_plan(
        "fig7b", FIG7B_ALGORITHMS, "implicit", "elastic", deg_values, m_values, samples
    ),
}


def figure_plan(name: str, samples: int | None = None, **kwargs) -> list[SweepJob]:
    """The sweeps figure ``name`` would run, without running them."""
    try:
        planner = _PLANNERS[name]
    except KeyError:
        known = ", ".join(sorted(_PLANNERS))
        raise KeyError(f"unknown figure {name!r}; known: {known}") from None
    return planner(samples, **kwargs)


def _run_plan(
    figure: str,
    plan: list[SweepJob],
    jobs: int,
    cache,
    progress,
    pipeline: str = "batched",
    backend=None,
    diagnostics: list | None = None,
) -> FigureResult:
    # Imported lazily: repro.runner depends on this module for plans.
    from repro.runner.pool import run_sweep

    result = FigureResult(figure)
    for job in plan:
        sweep = run_sweep(
            job.config,
            job.algorithms,
            jobs=jobs,
            cache=cache,
            progress=progress,
            pipeline=pipeline,
            backend=backend,
            diagnostics=diagnostics,
        )
        result.sweeps[job.key] = sweep
        if job.war_key is not None:
            result.war[job.war_key] = {
                name: weighted_acceptance_ratio(sweep.buckets, ratios)
                for name, ratios in sweep.ratios.items()
            }
    return result


def fig3(
    samples: int | None = None,
    m_values: tuple[int, ...] = (2, 4, 8),
    *,
    jobs: int = 1,
    cache=None,
    progress=None,
    pipeline: str = "batched",
    backend=None,
    diagnostics: list | None = None,
) -> FigureResult:
    """Figure 3: implicit deadlines, EDF-VD algorithms (speed-up bound 8/3)."""
    plan = figure_plan("fig3", samples, m_values=m_values)
    return _run_plan("fig3", plan, jobs, cache, progress, pipeline, backend, diagnostics)


def fig4(
    samples: int | None = None,
    m_values: tuple[int, ...] = (2, 4, 8),
    *,
    jobs: int = 1,
    cache=None,
    progress=None,
    pipeline: str = "batched",
    backend=None,
    diagnostics: list | None = None,
) -> FigureResult:
    """Figure 4: implicit deadlines, algorithms without a speed-up bound."""
    plan = figure_plan("fig4", samples, m_values=m_values)
    return _run_plan("fig4", plan, jobs, cache, progress, pipeline, backend, diagnostics)


def fig5(
    samples: int | None = None,
    m_values: tuple[int, ...] = (2, 4, 8),
    *,
    jobs: int = 1,
    cache=None,
    progress=None,
    pipeline: str = "batched",
    backend=None,
    diagnostics: list | None = None,
) -> FigureResult:
    """Figure 5: constrained deadlines, algorithms without a speed-up bound."""
    plan = figure_plan("fig5", samples, m_values=m_values)
    return _run_plan("fig5", plan, jobs, cache, progress, pipeline, backend, diagnostics)


def fig6a(
    samples: int | None = None,
    ph_values: tuple[float, ...] = FIG6_PH_VALUES,
    m_values: tuple[int, ...] = FIG6_M_VALUES,
    *,
    jobs: int = 1,
    cache=None,
    progress=None,
    pipeline: str = "batched",
    backend=None,
    diagnostics: list | None = None,
) -> FigureResult:
    """Figure 6a: WAR vs PH, implicit deadlines, EDF-VD algorithms."""
    plan = figure_plan("fig6a", samples, ph_values=ph_values, m_values=m_values)
    return _run_plan("fig6a", plan, jobs, cache, progress, pipeline, backend, diagnostics)


def fig6b(
    samples: int | None = None,
    ph_values: tuple[float, ...] = FIG6_PH_VALUES,
    m_values: tuple[int, ...] = FIG6_M_VALUES,
    *,
    jobs: int = 1,
    cache=None,
    progress=None,
    pipeline: str = "batched",
    backend=None,
    diagnostics: list | None = None,
) -> FigureResult:
    """Figure 6b: WAR vs PH, constrained deadlines, AMC/ECDF vs EY."""
    plan = figure_plan("fig6b", samples, ph_values=ph_values, m_values=m_values)
    return _run_plan("fig6b", plan, jobs, cache, progress, pipeline, backend, diagnostics)


def fig7a(
    samples: int | None = None,
    deg_values: tuple[float, ...] = FIG7_RHO_VALUES,
    m_values: tuple[int, ...] = FIG7_M_VALUES,
    *,
    jobs: int = 1,
    cache=None,
    progress=None,
    pipeline: str = "batched",
    backend=None,
    diagnostics: list | None = None,
) -> FigureResult:
    """Figure 7a (extension): acceptance/WAR vs imprecise budget ratio rho."""
    plan = figure_plan("fig7a", samples, deg_values=deg_values, m_values=m_values)
    return _run_plan("fig7a", plan, jobs, cache, progress, pipeline, backend, diagnostics)


def fig7b(
    samples: int | None = None,
    deg_values: tuple[float, ...] = FIG7_LAMBDA_VALUES,
    m_values: tuple[int, ...] = FIG7_M_VALUES,
    *,
    jobs: int = 1,
    cache=None,
    progress=None,
    pipeline: str = "batched",
    backend=None,
    diagnostics: list | None = None,
) -> FigureResult:
    """Figure 7b (extension): acceptance/WAR vs elastic period stretch lambda."""
    plan = figure_plan("fig7b", samples, deg_values=deg_values, m_values=m_values)
    return _run_plan("fig7b", plan, jobs, cache, progress, pipeline, backend, diagnostics)


FIGURES = {
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6a": fig6a,
    "fig6b": fig6b,
    "fig7a": fig7a,
    "fig7b": fig7b,
}

#: The figures of the DATE 2017 paper itself (the default campaign);
#: fig7a/fig7b are this reproduction's degradation extension.
PAPER_FIGURES = ("fig3", "fig4", "fig5", "fig6a", "fig6b")


def run_figure(name: str, samples: int | None = None, **kwargs) -> FigureResult:
    """Dispatch by figure name (``fig3`` ... ``fig6b``).

    Accepts the same keyword arguments as the figure functions, including
    the runner options ``jobs``, ``cache``, ``progress`` and ``backend``.
    """
    try:
        runner = FIGURES[name]
    except KeyError:
        known = ", ".join(sorted(FIGURES))
        raise KeyError(f"unknown figure {name!r}; known: {known}") from None
    return runner(samples=samples, **kwargs)
