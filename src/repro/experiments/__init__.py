"""Experiment harness reproducing the paper's evaluation (S12).

Entry points, one per figure of the paper (see DESIGN.md §4):

* :func:`~repro.experiments.figures.fig3` — acceptance ratio vs ``UB``,
  implicit deadlines, EDF-VD algorithms with a speed-up bound.
* :func:`~repro.experiments.figures.fig4` — implicit deadlines, algorithms
  without a speed-up bound (AMC / ECDF vs EY baselines).
* :func:`~repro.experiments.figures.fig5` — the constrained-deadline
  counterpart of Figure 4.
* :func:`~repro.experiments.figures.fig6a` / ``fig6b`` — weighted acceptance
  ratio vs the HC-task percentage ``PH``.

All runs are deterministic: task sets derive from
``spawn_seed(label, m, deadline type, PH, bucket, replicate)`` so any data
point can be regenerated in isolation.
"""

from repro.experiments.algorithms import (
    PartitionedAlgorithm,
    get_algorithm,
    registered_algorithms,
)
from repro.experiments.acceptance import (
    AcceptanceSweep,
    BucketOutcome,
    SweepConfig,
    SweepResult,
    merge_outcomes,
)
from repro.experiments.export import (
    load_figure_result,
    save_figure_result,
)
from repro.experiments.sensitivity import (
    SensitivityResult,
    difference_sensitivity,
)
from repro.experiments.weighted import weighted_acceptance_ratio
from repro.experiments.figures import (
    FIGURES,
    PAPER_FIGURES,
    FigureResult,
    SweepJob,
    fig3,
    fig4,
    fig5,
    fig6a,
    fig6b,
    fig7a,
    fig7b,
    figure_plan,
    run_figure,
)
from repro.experiments.report import (
    improvement_summary,
    render_sweep,
    render_war,
    sweep_to_csv,
)

__all__ = [
    "PartitionedAlgorithm",
    "get_algorithm",
    "registered_algorithms",
    "AcceptanceSweep",
    "BucketOutcome",
    "SweepConfig",
    "SweepResult",
    "merge_outcomes",
    "SensitivityResult",
    "difference_sensitivity",
    "load_figure_result",
    "save_figure_result",
    "weighted_acceptance_ratio",
    "FIGURES",
    "PAPER_FIGURES",
    "FigureResult",
    "SweepJob",
    "figure_plan",
    "fig3",
    "fig4",
    "fig5",
    "fig6a",
    "fig6b",
    "fig7a",
    "fig7b",
    "run_figure",
    "improvement_summary",
    "render_sweep",
    "render_war",
    "sweep_to_csv",
]
