"""Named partitioned MC algorithms — (partitioning strategy, test) pairs.

The paper's naming convention ``<strategy>-<test>`` is kept:
``cu-udp-ecdf`` is the CU-UDP strategy admitting tasks under the ECDF test.
The AMC algorithms use AMC-max (the test the paper cites) with
deadline-monotonic priorities; OPA variants are registered for the ablation
benchmarks.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.model import TaskSet
from repro.analysis import (
    AMCmaxTest,
    AMCrtbTest,
    ECDFTest,
    EDFVDTest,
    EYTest,
)
from repro.analysis.interface import SchedulabilityTest
from repro.core import (
    PartitioningStrategy,
    PartitionResult,
    ca_f_f,
    ca_nosort_f_f,
    ca_udp,
    ca_udp_res,
    ca_wu_f,
    cu_udp,
    cu_udp_res,
    eca_wu_f,
    partition,
)

__all__ = [
    "PartitionedAlgorithm",
    "get_algorithm",
    "registered_algorithms",
]


@dataclass(frozen=True)
class PartitionedAlgorithm:
    """A partitioned MC scheduling algorithm in the paper's sense."""

    name: str
    strategy: PartitioningStrategy
    test: SchedulabilityTest

    def partition(
        self, taskset: TaskSet, m: int, *, incremental: bool = True
    ) -> PartitionResult:
        """Partition ``taskset`` onto ``m`` cores under this algorithm.

        ``incremental`` is forwarded to :func:`repro.core.partition`: the
        default drives per-core analysis contexts when the test provides
        them (bit-identical results, much cheaper probes); False forces the
        from-scratch path the benchmarks compare against.
        """
        return partition(
            taskset, m, self.test, self.strategy, incremental=incremental
        )

    def accepts(self, taskset: TaskSet, m: int, *, incremental: bool = True) -> bool:
        """Convenience: does partitioning succeed?"""
        return self.partition(taskset, m, incremental=incremental).success


def _make(name: str, strategy_factory, test_factory) -> Callable[[], PartitionedAlgorithm]:
    def factory() -> PartitionedAlgorithm:
        return PartitionedAlgorithm(name, strategy_factory(), test_factory())

    return factory


_ALGORITHMS: dict[str, Callable[[], PartitionedAlgorithm]] = {
    # Figure 3: EDF-VD based, speed-up bound 8/3.
    "ca-udp-edf-vd": _make("ca-udp-edf-vd", ca_udp, EDFVDTest),
    "cu-udp-edf-vd": _make("cu-udp-edf-vd", cu_udp, EDFVDTest),
    "ca-nosort-f-f-edf-vd": _make(
        "ca-nosort-f-f-edf-vd", ca_nosort_f_f, EDFVDTest
    ),
    # Extra EDF-VD combinations (worked examples, ablations).
    "ca-wu-f-edf-vd": _make("ca-wu-f-edf-vd", ca_wu_f, EDFVDTest),
    "ca-f-f-edf-vd": _make("ca-f-f-edf-vd", ca_f_f, EDFVDTest),
    # Figures 4-6: demand-based and fixed-priority algorithms.
    "cu-udp-ecdf": _make("cu-udp-ecdf", cu_udp, ECDFTest),
    "ca-udp-ecdf": _make("ca-udp-ecdf", ca_udp, ECDFTest),
    "cu-udp-ey": _make("cu-udp-ey", cu_udp, EYTest),
    "cu-udp-amc": _make("cu-udp-amc", cu_udp, AMCmaxTest),
    "ca-udp-amc": _make("ca-udp-amc", ca_udp, AMCmaxTest),
    "eca-wu-f-ey": _make("eca-wu-f-ey", eca_wu_f, EYTest),
    "ca-f-f-ey": _make("ca-f-f-ey", ca_f_f, EYTest),
    # Ablation variants.
    "cu-udp-amc-rtb": _make("cu-udp-amc-rtb", cu_udp, AMCrtbTest),
    "cu-udp-amc-opa": _make(
        "cu-udp-amc-opa", cu_udp, lambda: AMCmaxTest("opa")
    ),
    # Degradation-aware UDP variants (fig7): the strategies balance the
    # residual-aware difference U_HH + U_res - U_LH; under the default
    # FullDrop service they allocate identically to their plain twins.
    "ca-udp-res-edf-vd": _make("ca-udp-res-edf-vd", ca_udp_res, EDFVDTest),
    "cu-udp-res-edf-vd": _make("cu-udp-res-edf-vd", cu_udp_res, EDFVDTest),
    "cu-udp-res-ecdf": _make("cu-udp-res-ecdf", cu_udp_res, ECDFTest),
    "cu-udp-res-ey": _make("cu-udp-res-ey", cu_udp_res, EYTest),
}


def get_algorithm(name: str) -> PartitionedAlgorithm:
    """Instantiate the registered algorithm called ``name``."""
    try:
        factory = _ALGORITHMS[name]
    except KeyError:
        known = ", ".join(sorted(_ALGORITHMS))
        raise KeyError(f"unknown algorithm {name!r}; known: {known}") from None
    return factory()


def registered_algorithms() -> tuple[str, ...]:
    """Names of all registered algorithms, sorted."""
    return tuple(sorted(_ALGORITHMS))
