"""Weighted acceptance ratio (Figure 6 metric).

The paper defines::

    WAR(S) = sum_{UB in S} AR(UB) * UB / sum_{UB in S} UB

weighting each bucket's acceptance ratio by its utilization — heavier
workloads count more, so WAR rewards algorithms that stay schedulable under
load rather than ones that only win on easy sets.
"""

from __future__ import annotations

from collections.abc import Sequence

__all__ = ["weighted_acceptance_ratio"]


def weighted_acceptance_ratio(
    buckets: Sequence[float], ratios: Sequence[float]
) -> float:
    """``WAR`` over ``(UB, AR)`` pairs; see module docstring."""
    if len(buckets) != len(ratios):
        raise ValueError(
            f"bucket/ratio length mismatch: {len(buckets)} != {len(ratios)}"
        )
    total_weight = sum(buckets)
    if total_weight <= 0:
        raise ValueError("weighted acceptance ratio needs positive UB weights")
    return sum(ar * ub for ub, ar in zip(buckets, ratios)) / total_weight
