"""Sensitivity analysis: *when* does utilization-difference balancing help?

An extension experiment beyond the paper's figures, probing its central
mechanism directly.  The paper argues UDP wins because it balances the
per-core utilization difference ``U_HH - U_LH``; if that is the mechanism,
the UDP advantage should

* vanish as the per-task differences ``C_H - C_L`` shrink to zero (every
  strategy sees a non-MC system), and
* grow with the spread of differences across tasks.

:func:`difference_sensitivity` sweeps a squeeze ratio ``r`` (see
:func:`repro.model.transforms.squeeze_difference`): ``r = 0`` keeps the
generated differences, ``r = 1`` erases them (``C_L = C_H``), and reports
the weighted acceptance ratio of each algorithm at every ``r`` over the
same underlying workloads.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.generator import MCTaskSetGenerator, UtilizationGrid
from repro.model import TaskSet
from repro.model.transforms import squeeze_difference
from repro.util.rng import derive_rng
from repro.util.tables import format_table
from repro.experiments.algorithms import PartitionedAlgorithm

__all__ = ["SensitivityResult", "difference_sensitivity"]


@dataclass
class SensitivityResult:
    """WAR per squeeze ratio per algorithm."""

    m: int
    ratios: list[float]
    war: dict[str, list[float]] = field(default_factory=dict)

    def advantage(self, algorithm: str, baseline: str) -> list[float]:
        """Per-ratio WAR gap ``algorithm - baseline``."""
        return [
            a - b for a, b in zip(self.war[algorithm], self.war[baseline])
        ]

    def render(self) -> str:
        headers = ["squeeze r"] + list(self.war)
        rows = []
        for idx, ratio in enumerate(self.ratios):
            rows.append(
                [f"{ratio:.2f}"] + [self.war[name][idx] for name in self.war]
            )
        return format_table(
            headers, rows, title=f"difference sensitivity (m={self.m})"
        )


def _war(accepted: list[tuple[float, bool]]) -> float:
    """Weighted acceptance over (UB, verdict) samples."""
    total = sum(ub for ub, _ in accepted)
    if total == 0:
        return 0.0
    return sum(ub for ub, ok in accepted if ok) / total


def difference_sensitivity(
    algorithms: list[PartitionedAlgorithm],
    m: int = 4,
    squeeze_ratios: tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0),
    samples: int = 40,
    label: str = "sensitivity",
) -> SensitivityResult:
    """Run the sweep; see module docstring.

    The same ``samples`` base workloads (drawn from the paper's grid with
    ``UB`` above 0.5, where partitioning is non-trivial) are reused at every
    squeeze ratio, so the curves differ only through the transformation.
    """
    grid_points = [
        p for p in UtilizationGrid().points() if 0.5 <= p.bound <= 0.95
    ]
    generator = MCTaskSetGenerator(m=m)
    base: list[TaskSet] = []
    for replicate in range(samples):
        rng = derive_rng(label, m, replicate)
        for _ in range(6):
            point = grid_points[int(rng.integers(len(grid_points)))]
            ts = generator.generate(rng, point.u_hh, point.u_lh, point.u_ll)
            if ts is not None:
                base.append(ts)
                break

    result = SensitivityResult(m=m, ratios=list(squeeze_ratios))
    for algorithm in algorithms:
        war_curve = []
        for ratio in squeeze_ratios:
            outcomes = []
            for ts in base:
                squeezed = squeeze_difference(ts, ratio)
                ub = squeezed.utilization.normalized(m).bound
                outcomes.append((ub, algorithm.accepts(squeezed, m)))
            war_curve.append(_war(outcomes))
        result.war[algorithm.name] = war_curve
    return result
