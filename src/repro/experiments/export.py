"""Persistence for experiment results.

Figure experiments are expensive at paper scale; this module round-trips
:class:`~repro.experiments.figures.FigureResult` through plain JSON so a
run can be archived, diffed against a previous run, or re-rendered without
recomputation::

    result = fig3(samples=1000)
    save_figure_result(result, "fig3.json")
    ...
    again = load_figure_result("fig3.json")
    print(render_figure(again))
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.experiments.acceptance import SweepConfig, SweepResult
from repro.experiments.figures import FigureResult

__all__ = [
    "sweep_config_to_dict",
    "sweep_to_dict",
    "sweep_from_dict",
    "figure_result_to_dict",
    "figure_result_from_dict",
    "save_figure_result",
    "load_figure_result",
]

_FORMAT_VERSION = 1


def sweep_config_to_dict(config: SweepConfig) -> dict[str, Any]:
    """JSON-compatible dict form of a sweep config.

    Also the canonical config serialization the runner's shard cache hashes
    (see :mod:`repro.runner.cache`), so a config field added here
    automatically invalidates stale cached shards.
    """
    data = {
        "label": config.label,
        "m": config.m,
        "deadline_type": config.deadline_type,
        "p_high": config.p_high,
        "samples_per_bucket": config.samples_per_bucket,
        "bucket_width": config.bucket_width,
        "ub_min": config.ub_min,
        "ub_max": config.ub_max,
    }
    # Emitted only when non-default so drop-at-switch figure JSON (and the
    # shard-cache keys derived from this dict) stay byte-identical to the
    # pre-degradation format; absent keys load as the default.
    if config.service != "full-drop":
        data["service"] = config.service
    return data


def sweep_to_dict(sweep: SweepResult) -> dict[str, Any]:
    """JSON-compatible dict form of one sweep result."""
    return {
        "config": sweep_config_to_dict(sweep.config),
        "buckets": sweep.buckets,
        "samples": sweep.samples,
        "ratios": sweep.ratios,
    }


def sweep_from_dict(data: dict[str, Any]) -> SweepResult:
    """Inverse of :func:`sweep_to_dict`."""
    config = SweepConfig(**data["config"])
    return SweepResult(
        config=config,
        buckets=list(data["buckets"]),
        samples=list(data["samples"]),
        ratios={name: list(vals) for name, vals in data["ratios"].items()},
    )


def figure_result_to_dict(result: FigureResult) -> dict[str, Any]:
    """JSON-compatible dict form of a figure result."""
    return {
        "format_version": _FORMAT_VERSION,
        "figure": result.figure,
        "sweeps": {key: sweep_to_dict(s) for key, s in result.sweeps.items()},
        # JSON keys must be strings; encode the (m, PH) tuple as "m,ph".
        "war": {
            f"{m},{ph}": table for (m, ph), table in result.war.items()
        },
    }


def figure_result_from_dict(data: dict[str, Any]) -> FigureResult:
    """Inverse of :func:`figure_result_to_dict`."""
    version = data.get("format_version")
    if version != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported figure-result format {version!r} "
            f"(expected {_FORMAT_VERSION})"
        )
    result = FigureResult(data["figure"])
    for key, sweep_data in data.get("sweeps", {}).items():
        result.sweeps[key] = sweep_from_dict(sweep_data)
    for key, table in data.get("war", {}).items():
        m_raw, ph_raw = key.split(",", 1)
        result.war[(int(m_raw), float(ph_raw))] = dict(table)
    return result


def save_figure_result(result: FigureResult, path: str | Path) -> None:
    """Write ``result`` as indented JSON to ``path``."""
    Path(path).write_text(
        json.dumps(figure_result_to_dict(result), indent=2) + "\n",
        encoding="utf-8",
    )


def load_figure_result(path: str | Path) -> FigureResult:
    """Read a figure result previously written by :func:`save_figure_result`."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return figure_result_from_dict(data)
