"""Campaign-runner benchmarks: parallel speedup and cache-hit latency.

Measures the three execution paths of ``repro.runner`` over the same
fig3-style sweep so their relative cost is tracked release over release:

* serial (the pre-runner baseline path),
* a ``jobs=2`` worker pool (expect <1x wall time, approaching 0.5x for
  shard-dominated runs),
* a fully warm shard cache (expect near-zero compute, i.e. the cost of
  hashing + JSON loads only).

Scale with ``REPRO_SAMPLES`` as usual; results land in
``benchmarks/results/runner_parallel.txt``.
"""

from __future__ import annotations

import time

from conftest import bench_samples, emit

from repro.experiments.acceptance import SweepConfig
from repro.runner import ShardCache, run_sweep
from repro.util.tables import format_table

ALGORITHMS = ("ca-udp-edf-vd", "cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")


def _config() -> SweepConfig:
    return SweepConfig(
        label="bench-runner",
        m=4,
        samples_per_bucket=bench_samples(),
    )


def _timed(fn) -> tuple[float, object]:
    start = time.perf_counter()
    result = fn()
    return time.perf_counter() - start, result


def test_runner_speedup_and_cache(once, tmp_path):
    config = _config()

    serial_s, serial = _timed(lambda: run_sweep(config, ALGORITHMS, jobs=1))

    parallel_s, parallel = _timed(
        lambda: run_sweep(config, ALGORITHMS, jobs=2)
    )
    assert parallel == serial  # determinism is part of the contract

    cache = ShardCache(tmp_path / "cache")
    warm_s, _ = _timed(lambda: run_sweep(config, ALGORITHMS, cache=cache))
    hit_s, cached = _timed(lambda: run_sweep(config, ALGORITHMS, cache=cache))
    assert cached == serial
    assert cache.hits == cache.stored > 0

    rows = [
        ["serial jobs=1", f"{serial_s:.3f}", "1.00x"],
        ["pool jobs=2", f"{parallel_s:.3f}", f"{serial_s / parallel_s:.2f}x"],
        ["cold cache", f"{warm_s:.3f}", f"{serial_s / warm_s:.2f}x"],
        ["warm cache", f"{hit_s:.3f}", f"{serial_s / hit_s:.2f}x"],
    ]
    emit(
        "runner_parallel",
        format_table(
            ["path", "seconds", "speedup"],
            rows,
            title=f"runner paths, {config.samples_per_bucket} samples/bucket",
        ),
    )

    # pytest-benchmark records the parallel path as the tracked series
    once(run_sweep, config, ALGORITHMS, jobs=2)
