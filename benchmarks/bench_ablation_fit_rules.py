"""Ablation: is worst-fit on the *utilization difference* the right metric?

DESIGN.md calls out the UDP fit rule as the paper's core design choice.
This bench swaps only the HC fit rule (keeping the criticality-aware order
and first-fit LC placement fixed) and reports acceptance ratios for:

* ``ca-udp``   — worst-fit on U_HH - U_LH (the paper's rule);
* ``ca-wu-f``  — worst-fit on U_HH alone (Gu et al.'s rule);
* ``ca-f-f``   — first-fit (no balancing at all).

The paper's Figure 1 argument predicts the ordering udp >= wu >= ff on
EDF-VD workloads with mixed utilization differences.
"""

from repro.experiments import SweepConfig, get_algorithm
from repro.experiments.acceptance import AcceptanceSweep
from repro.experiments.report import render_sweep
from repro.experiments.weighted import weighted_acceptance_ratio
from repro.experiments.algorithms import PartitionedAlgorithm
from repro.analysis import EDFVDTest
from repro.core import ca_f_f, ca_udp, ca_wu_f

from conftest import bench_samples, emit

ALGORITHMS = [
    PartitionedAlgorithm("hcfit-udp", ca_udp(), EDFVDTest()),
    PartitionedAlgorithm("hcfit-wu", ca_wu_f(), EDFVDTest()),
    PartitionedAlgorithm("hcfit-ff", ca_f_f(), EDFVDTest()),
]


def test_ablation_hc_fit_metric(once):
    def run():
        config = SweepConfig(
            label="ablation-fit",
            m=4,
            samples_per_bucket=bench_samples(),
            ub_min=0.4,
        )
        return AcceptanceSweep(config).run(ALGORITHMS)

    sweep = once(run)
    war = {
        name: weighted_acceptance_ratio(sweep.buckets, ratios)
        for name, ratios in sweep.ratios.items()
    }
    lines = [render_sweep(sweep, title="Ablation: HC fit metric (m=4)")]
    lines.append("")
    lines.extend(f"WAR({name}) = {value:.3f}" for name, value in war.items())
    emit("ablation_fit_rules", "\n".join(lines))
    # The design-choice claim: the difference metric is the best of the three.
    assert war["hcfit-udp"] >= war["hcfit-wu"] - 0.02
