"""Figure 6: weighted acceptance ratio vs HC-task percentage PH.

* 6a — implicit deadlines, EDF-VD algorithms, m in {2, 4}.
* 6b — constrained deadlines, UDP x {AMC, ECDF} vs EY baselines.

Paper's qualitative findings pinned here: CA-UDP degrades as PH grows
(heavy LC tasks get stranded) while CU-UDP stays strong at every PH.
"""

from repro.experiments import fig6a, fig6b
from repro.experiments.report import render_war

from conftest import bench_samples, emit


def test_fig6a_war_implicit(once):
    result = once(fig6a, samples=bench_samples())
    emit("fig6a", render_war(result))
    # CU-UDP >= CA-UDP at the highest PH (the paper's key observation).
    for m in (2, 4):
        high_ph = result.war[(m, 0.9)]
        assert high_ph["cu-udp-edf-vd"] >= high_ph["ca-udp-edf-vd"] - 0.02


def test_fig6b_war_constrained(once):
    result = once(fig6b, samples=bench_samples())
    emit("fig6b", render_war(result))
    for m in (2, 4):
        high_ph = result.war[(m, 0.9)]
        assert high_ph["cu-udp-ecdf"] >= high_ph["ca-udp-ecdf"] - 0.02
