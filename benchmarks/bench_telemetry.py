"""Journal overhead: the durable telemetry plane must be nearly free.

Drives the fig3 campaign slice (30 shards across the m sweep) with the
event journal off and on, for the serial backend (conductor-only
writes) and the cluster backend (conductor + every worker appending to
the same file), and records the wall-clock overhead factor in
``BENCH_telemetry.json`` at the repo root.  The differential guarantee
is asserted inline — journal-on outcomes must be bit-identical to
journal-off — and the artifact doubles as a ``repro report --baseline``
target because it carries a ``shards_per_sec`` figure summarized *from
the journal itself*.

Tripwire: the ISSUE caps journal overhead at 5% on this slice.  Each
pass is best-of-N wall clock; on a noisy 1-CPU runner a small absolute
grace (50ms) keeps sub-second timings from flaking the gate, and the
committed artifact records the honest factor either way.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.experiments.acceptance import SweepConfig
from repro.experiments.figures import FIG3_ALGORITHMS
from repro.obs.journal import read_events
from repro.obs.report import summarize_journal
from repro.runner import ClusterBackend, decompose_sweep, execute_units

from conftest import RESULTS_DIR, bench_samples, emit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Worker count for the cluster rows (pinned for comparability).
JOBS = 4

#: The fig3 processor sweep — same batch the fabric bench drives.
M_VALUES = (2, 4, 8)

#: The ISSUE's overhead ceiling, plus an absolute grace for sub-second
#: timings on shared CI runners.
MAX_OVERHEAD = 1.05
GRACE_SECONDS = 0.05

REPEATS = 2


def fabric_units(samples: int):
    units = []
    for m in M_VALUES:
        config = SweepConfig(label="fig3", m=m, samples_per_bucket=samples)
        units.extend(decompose_sweep(config, FIG3_ALGORITHMS))
    return units


def make_backend(name: str):
    if name == "cluster":
        return ClusterBackend(JOBS, heartbeat_interval=0.2, lease_timeout=60.0)
    return name


def timed(units, backend_name: str, jobs: int):
    """Best-of-N wall clock for one pass; returns (seconds, outcomes)."""
    best = None
    result = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        current = execute_units(
            units, jobs=jobs, backend=make_backend(backend_name)
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, result = elapsed, current
    return best, result


def test_bench_telemetry_report(tmp_path, monkeypatch):
    """Journal off/on parity + overhead; emits BENCH_telemetry.json."""
    samples = bench_samples(250)
    units = fabric_units(samples)
    shards = len(units)

    monkeypatch.delenv("REPRO_RUNNER_FAULT", raising=False)
    monkeypatch.delenv("REPRO_RUNNER_FAULT_DIR", raising=False)
    monkeypatch.delenv("REPRO_OBS_JOURNAL", raising=False)

    # Untimed warmup: the first pass pays import and allocator costs that
    # would otherwise be billed to whichever mode happens to run first.
    execute_units(units, jobs=1, backend="serial")

    modes: dict[str, dict] = {}
    journals: dict[str, Path] = {}
    for backend_name, jobs in (("serial", 1), ("cluster", JOBS)):
        t_off, r_off = timed(units, backend_name, jobs)
        journal_path = tmp_path / f"journal-{backend_name}.jsonl"
        monkeypatch.setenv("REPRO_OBS_JOURNAL", str(journal_path))
        t_on, r_on = timed(units, backend_name, jobs)
        monkeypatch.delenv("REPRO_OBS_JOURNAL")
        # The differential guarantee, asserted where the numbers are made.
        assert r_on == r_off, f"{backend_name}: journal-on outcomes diverged"
        overhead = t_on / t_off
        modes[backend_name] = {
            "jobs": jobs,
            "off_s": round(t_off, 4),
            "on_s": round(t_on, 4),
            "overhead_factor": round(overhead, 3),
            "shards_per_sec": round(shards / t_on, 2),
        }
        journals[backend_name] = journal_path

    # The journal's own account of the (best cluster) run: event volume
    # and the throughput a `repro report --baseline` gate would read.
    events = read_events(journals["cluster"])
    bytes_written = journals["cluster"].stat().st_size
    summary = summarize_journal(journals["cluster"], events=events)
    # best-of-N appends to one file; scale the census to a single pass
    events_per_shard = len(events) / (shards * REPEATS)

    report = {
        "figure": "fig3",
        "m_values": list(M_VALUES),
        "samples_per_bucket": samples,
        "shards": shards,
        "algorithms": list(FIG3_ALGORITHMS),
        "host": {
            "python": platform.python_version(),
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
        },
        "max_overhead": MAX_OVERHEAD,
        "modes": modes,
        "journal": {
            "schema": "repro-journal/1",
            "events_per_shard": round(events_per_shard, 2),
            "bytes_per_shard": round(bytes_written / (shards * REPEATS)),
            "summarized_shards_per_sec": (
                round(summary.shards_per_sec, 2)
                if summary.shards_per_sec
                else None
            ),
        },
    }

    lines = [f"backend   jobs    off        on      overhead   shards/s"]
    for name in ("serial", "cluster"):
        row = modes[name]
        lines.append(
            f"{name:<9} {row['jobs']:<6} {row['off_s']:>7.3f}s "
            f"{row['on_s']:>7.3f}s {row['overhead_factor']:>8.3f}x "
            f"{row['shards_per_sec']:>9.1f}"
        )
    lines.append(
        f"journal: ~{report['journal']['events_per_shard']:.1f} events/shard, "
        f"~{report['journal']['bytes_per_shard']} bytes/shard"
    )

    emit("BENCH_telemetry", "\n".join(lines))
    payload = json.dumps(report, indent=2) + "\n"
    (REPO_ROOT / "BENCH_telemetry.json").write_text(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_telemetry.json").write_text(payload)

    # Tripwires: the journal really recorded the runs, and stayed <5%.
    assert events, "journal-on pass wrote no events"
    assert summary.executed > 0
    for name, row in modes.items():
        assert row["on_s"] <= row["off_s"] * MAX_OVERHEAD + GRACE_SECONDS, (
            f"{name}: journal overhead {row['overhead_factor']:.3f}x "
            f"blew the {MAX_OVERHEAD:.2f}x budget"
        )
