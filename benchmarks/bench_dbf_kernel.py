"""Demand-kernel stack benchmark: forward vs QPA vs vec vs block.

PR 5 rewrote the demand-violation kernel of the EY/ECDF tuning descent
around a QPA backward fixed-point search, Fisher–Baruah-style upper-bound
accept screens and full-deadline warm-start anchors; PR 9 added the
``vec`` kernel on top — closed-form own-half V*, the split LO upper-bound
screen, vectorized candidate ranking and speculative shrink batches — all
trajectory-identical layers.  PR 10 adds the ``block`` kernel, which
attacks the memo wall PR 9 diagnosed (the descent is bound by exact-probe
*count*, not per-probe cost) by committing joint multi-task boundary
jumps under a single exact probe — verdict-identical only, so this
benchmark compares its *verdicts* against the other kernels and reports
the exact-descent-iteration columns that are its whole justification.
Everything lands in ``BENCH_dbf.json`` at the repo root (also a CI
artifact, next to ``BENCH_batch.json``):

* **kernel microbenchmark** — the from-scratch EY + ECDF tuning analysis
  on boundary-utilization uniprocessor sets under all four kernels: the
  kernel's real consumer, with per-kernel ``descent.iterations``
  histogram deltas and the block planner's jump/settle counters;
* **figure slices end-to-end** — the fig4 (implicit) and fig5
  (constrained) sweeps, generation included, with the forward-kernel
  scalar pipeline as the baseline and the QPA/vec/block pipelines as
  candidates, plus the per-kernel settle counters and the qpa-vs-block
  descent-iteration delta;
* **speculation-depth sweep** — the fig4 vec-batched slice at
  ``k = 1, 2, 4, 8`` (:func:`repro.analysis.dbf_vec.set_speculation_depth`),
  a pure cost knob whose every setting must reproduce the baseline
  outcomes exactly;
* **verdict cache** — the fig4 slice with ``REPRO_VERDICT_CACHE=on``:
  cold-run and warm-run seconds, hit/miss/store counts and the warm hit
  rate, outcome-parity-checked against the uncached reference;
* **parity** — the non-negotiable invariant that every pipeline/kernel
  combination (and the cache) produces identical shard outcomes.

Measured reality vs the issue's targets: PR 9 recorded vec at parity with
qpa (the memo wall), and PR 10's block kernel is judged on *fewer exact
iterations*, recorded honestly in the ``descent_iterations`` columns
whatever the wall-clock says.

Scale knobs: ``REPRO_SAMPLES`` (default 10), ``REPRO_DBF_KERNEL`` /
``REPRO_DBF_SPEC_K`` / ``REPRO_DBF_APPROX_K`` / ``REPRO_DBF_SCAN_CHUNK``
(kernel knobs, see :mod:`repro.util.env`).
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

import repro.obs as obs
from repro.analysis import dbf, dbf_block, dbf_vec
from repro.analysis import verdict_cache as vcache
from repro.analysis.dbf import set_demand_kernel
from repro.analysis.dbf_vec import set_speculation_depth
from repro.obs import REGISTRY as OBS_REGISTRY
from repro.experiments.acceptance import (
    AcceptanceSweep,
    SweepConfig,
    kernel_summary,
)
from repro.experiments.algorithms import get_algorithm
from repro.experiments.figures import FIG45_ALGORITHMS

from conftest import RESULTS_DIR, bench_samples, emit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: the committed BENCH_batch.json fig4 m=4 scalar baseline (tasksets/sec)
#: the PR 5 kernel swap was aimed at — recorded for context in the artifact
BATCH_BASELINE_FIG4_TS_PER_SEC = 34.7

#: the committed PR 5 BENCH_dbf.json fig4 m=4 QPA throughput the PR 9 vec
#: kernel is measured against (the ">= 2x" aspiration's denominator)
QPA_BASELINE_FIG4_TS_PER_SEC = 53.0

#: speculation depths the fig4 k-sweep exercises (default depth included)
SPEC_DEPTHS = (1, 2, 4, 8)


def _microbench_tasksets():
    """Boundary-utilization uniprocessor sets — the kernel's real consumer
    (the EY/ECDF tuning analysis) at its most demand-check-intensive."""
    from repro.generator import GeneratorConfig, MCTaskSetGenerator
    from repro.util.rng import derive_rng

    generator = MCTaskSetGenerator(
        GeneratorConfig(m=1, p_high=0.5, deadline_type="constrained")
    )
    sets = []
    index = 0
    while len(sets) < 80 and index < 2000:
        rng = derive_rng("bench-dbf-tuning", index)
        index += 1
        ts = generator.generate(rng, 0.35, 0.3, 0.45)
        if ts is not None:
            sets.append(ts)
    return sets


def _descent_iters():
    """(count, total) of the lifetime ``descent.iterations`` histogram;
    callers bracket a run and subtract — the recorder must be active."""
    histogram = OBS_REGISTRY.histogram("descent.iterations")
    if histogram is None:
        return (0, 0.0)
    summary = histogram.summary()
    return (summary["count"], summary["total"])


def _iters_row(before, after):
    count = after[0] - before[0]
    total = after[1] - before[1]
    return {
        "descents": count,
        "iterations": int(total),
        "iterations_mean": round(total / count, 2) if count else 0.0,
    }


def _run_micro(sets, kernel, repeats=3):
    from repro.analysis.ecdf import ECDFTest
    from repro.analysis.ey import EYTest

    previous = set_demand_kernel(kernel)
    try:
        best = None
        verdicts = None
        for _ in range(repeats):
            ey, ecdf = EYTest(), ECDFTest()
            start = time.process_time()
            current = [
                (ey.is_schedulable(ts), ecdf.is_schedulable(ts)) for ts in sets
            ]
            elapsed = time.process_time() - start
            if best is None or elapsed < best:
                best = elapsed
            verdicts = current
        return best, verdicts
    finally:
        set_demand_kernel(previous)


def _run_slice(label, deadline_type, m, samples, kernel, pipeline, repeats=2):
    """Best-of-N end-to-end sweep slice (generation + all algorithms).

    Also returns the per-algorithm demand-kernel summary of a single
    repeat: the registry accumulates per process, so each repeat's
    contribution is carved out with a ``since`` baseline (every repeat
    runs identical work, so any repeat's delta represents the slice).
    """
    previous = set_demand_kernel(kernel)
    try:
        config = SweepConfig(
            label=label,
            m=m,
            deadline_type=deadline_type,
            samples_per_bucket=samples,
        )
        algorithms = [get_algorithm(name) for name in FIG45_ALGORITHMS]
        best = None
        outcomes = None
        kernels = {}
        for _ in range(repeats):
            sweep = AcceptanceSweep(config, pipeline=pipeline)
            baseline = OBS_REGISTRY.counters("kernel.")
            start = time.process_time()
            current = [
                sweep.run_bucket(bucket, points, algorithms)
                for bucket, points in sweep.bucket_points().items()
            ]
            elapsed = time.process_time() - start
            kernels = kernel_summary(since=baseline)
            if best is None or elapsed < best:
                best, outcomes = elapsed, current
        return best, outcomes, kernels
    finally:
        set_demand_kernel(previous)


def test_bench_dbf_kernel_report():
    """Parity + kernel/slice throughput; emits the BENCH_dbf.json artifact.

    Runs with the metrics recorder installed so the ``descent.iterations``
    histogram — the block kernel's fewer-exact-iterations evidence —
    records; identical (tiny) observation cost for every kernel, so the
    relative timings stay fair.
    """
    previous_recorder = obs.set_recorder(obs.MetricsRecorder(OBS_REGISTRY))
    try:
        _bench_dbf_kernel_report()
    finally:
        obs.set_recorder(previous_recorder)


def _bench_dbf_kernel_report():
    samples = bench_samples()
    report = {
        "samples_per_bucket": samples,
        "kernels": {
            "forward": "chunked forward breakpoint enumeration (oracle)",
            "qpa": "upper-bound screens + QPA backward fixed-point search",
            "vec": (
                "qpa + closed-form V*, split screens, vectorized ranking, "
                "speculative shrink batches"
            ),
            "block": (
                "vec + joint block-shrink descent: one multi-task boundary "
                "jump per exact probe (verdict-identical only)"
            ),
        },
        "host": {"python": platform.python_version()},
        "committed_batch_baseline": {
            "fig4_m4_scalar_tasksets_per_sec": BATCH_BASELINE_FIG4_TS_PER_SEC,
        },
        "committed_qpa_baseline": {
            "fig4_m4_tasksets_per_sec": QPA_BASELINE_FIG4_TS_PER_SEC,
        },
    }
    lines = []

    # -- kernel microbenchmark: the EY/ECDF tuning analysis ----------------
    sets = _microbench_tasksets()
    micro_times = {}
    micro_verdicts = {}
    micro_iters = {}
    counters = {}
    for kernel in ("forward", "qpa", "vec", "block"):
        dbf.reset_kernel_counters()
        dbf_block.reset_block_counters()
        before = _descent_iters()
        micro_times[kernel], micro_verdicts[kernel] = _run_micro(sets, kernel)
        micro_iters[kernel] = _iters_row(before, _descent_iters())
        if kernel == "qpa":
            counters = dbf.kernel_counters()
    block_planner = dbf_block.block_counters()
    for kernel in ("qpa", "vec", "block"):
        assert micro_verdicts[kernel] == micro_verdicts["forward"], (
            f"microbench: {kernel} kernel changed tuning verdicts"
        )
    t_forward, t_qpa = micro_times["forward"], micro_times["qpa"]
    t_vec, t_block = micro_times["vec"], micro_times["block"]
    micro_speedup = t_forward / t_qpa if t_qpa else float("inf")
    micro_speedup_vec = t_forward / t_vec if t_vec else float("inf")
    micro_speedup_block = t_forward / t_block if t_block else float("inf")
    runs = counters.get("qpa-runs", 0)
    report["microbench"] = {
        "tasksets": len(sets),
        "analyses_per_set": 2,
        "workload": "EY + ECDF from-scratch analysis, constrained m=1",
        "forward_s": round(t_forward, 4),
        "qpa_s": round(t_qpa, 4),
        "vec_s": round(t_vec, 4),
        "block_s": round(t_block, 4),
        "speedup": round(micro_speedup, 2),
        "speedup_vec": round(micro_speedup_vec, 2),
        "speedup_block": round(micro_speedup_block, 2),
        "qpa_runs": runs,
        "qpa_iterations_mean": (
            round(counters.get("qpa-iterations", 0) / runs, 2) if runs else 0.0
        ),
        "settled": {
            key: counters.get(key, 0)
            for key in ("qpa-accept", "approx-accept", "approx-reject")
        },
        # The block kernel's whole case: exact descent iterations per
        # kernel over the identical workload (3 best-of repeats each).
        "descent_iterations": micro_iters,
        "block": block_planner,
    }
    lines.append(
        f"microbench  {len(sets)} sets x (EY + ECDF) analyses: "
        f"forward {t_forward:.3f}s  qpa {t_qpa:.3f}s  vec {t_vec:.3f}s  "
        f"block {t_block:.3f}s  (qpa {micro_speedup:.2f}x, "
        f"vec {micro_speedup_vec:.2f}x, block {micro_speedup_block:.2f}x)"
    )
    lines.append(
        "microbench  descent iterations: "
        + "  ".join(
            f"{kernel} {micro_iters[kernel]['iterations']}"
            for kernel in ("qpa", "vec", "block")
        )
        + (
            f"  (block: {block_planner['block-jumps']} jumps, "
            f"{block_planner['block-settled']} tasks settled, "
            f"{block_planner['block-fallback']} fallbacks)"
        )
    )

    # -- figure slices ------------------------------------------------------
    report["figures"] = {}
    slice_speedups = {}
    vec_speedups = {}
    block_speedups = {}
    iter_deltas = {}
    fig4_reference = None
    for label, deadline_type in (("fig4", "implicit"), ("fig5", "constrained")):
        t_base, out_base, _ = _run_slice(
            label, deadline_type, 4, samples, "forward", "scalar"
        )
        t_scalar, out_scalar, _ = _run_slice(
            label, deadline_type, 4, samples, "qpa", "scalar"
        )
        before_q = _descent_iters()
        t_batched, out_batched, _ = _run_slice(
            label, deadline_type, 4, samples, "qpa", "batched"
        )
        iters_qpa = _iters_row(before_q, _descent_iters())
        t_vscalar, out_vscalar, _ = _run_slice(
            label, deadline_type, 4, samples, "vec", "scalar"
        )
        t_vbatched, out_vbatched, kernels = _run_slice(
            label, deadline_type, 4, samples, "vec", "batched"
        )
        before_b = _descent_iters()
        t_bbatched, out_bbatched, _ = _run_slice(
            label, deadline_type, 4, samples, "block", "batched"
        )
        iters_block = _iters_row(before_b, _descent_iters())
        # The non-negotiable invariant: identical shard outcomes under
        # every kernel/pipeline combination (verdict-level for block —
        # BucketOutcome carries ratios and acceptance counts, exactly
        # what the contract pins).
        assert out_base == out_scalar, f"{label}: qpa scalar diverged"
        assert out_base == out_batched, f"{label}: qpa batched diverged"
        assert out_base == out_vscalar, f"{label}: vec scalar diverged"
        assert out_base == out_vbatched, f"{label}: vec batched diverged"
        assert out_base == out_bbatched, f"{label}: block batched diverged"
        if label == "fig4":
            fig4_reference = out_base
        n_sets = sum(o.samples for o in out_base)
        best_qpa = min(t_scalar, t_batched)
        best_vec = min(t_vscalar, t_vbatched)
        speedup = t_base / best_qpa
        speedup_vec = t_base / best_vec
        speedup_block = t_base / t_bbatched
        slice_speedups[label] = speedup
        vec_speedups[label] = speedup_vec
        block_speedups[label] = speedup_block
        iter_deltas[label] = (iters_qpa, iters_block)
        reduction = (
            round(1 - iters_block["iterations"] / iters_qpa["iterations"], 4)
            if iters_qpa["iterations"]
            else 0.0
        )
        report["figures"][label] = {
            "m": 4,
            "tasksets": n_sets,
            "algorithms": list(FIG45_ALGORITHMS),
            "forward_scalar_s": round(t_base, 4),
            "qpa_scalar_s": round(t_scalar, 4),
            "qpa_batched_s": round(t_batched, 4),
            "vec_scalar_s": round(t_vscalar, 4),
            "vec_batched_s": round(t_vbatched, 4),
            "block_batched_s": round(t_bbatched, 4),
            "speedup_end_to_end": round(speedup, 3),
            "speedup_vec_end_to_end": round(speedup_vec, 3),
            "speedup_block_end_to_end": round(speedup_block, 3),
            "tasksets_per_sec_forward": round(n_sets / t_base, 1),
            "tasksets_per_sec_qpa": round(n_sets / best_qpa, 1),
            "tasksets_per_sec_vec": round(n_sets / best_vec, 1),
            "tasksets_per_sec_block": round(n_sets / t_bbatched, 1),
            "kernel_counters": kernels,
            "descent_iterations": {
                "qpa_batched": iters_qpa,
                "block_batched": iters_block,
                "reduction": reduction,
            },
        }
        lines.append(
            f"{label:<7} m=4 {n_sets:>5} sets: forward-scalar {t_base:6.3f}s  "
            f"qpa {best_qpa:6.3f}s  vec {best_vec:6.3f}s  "
            f"block {t_bbatched:6.3f}s  (qpa {speedup:.2f}x, "
            f"vec {speedup_vec:.2f}x, block {speedup_block:.2f}x end-to-end)"
        )
        lines.append(
            f"{label:<7} descent iterations: qpa {iters_qpa['iterations']}  "
            f"block {iters_block['iterations']}  "
            f"({reduction * 100:.1f}% fewer exact iterations)"
        )

    # -- speculation-depth sweep (fig4, vec batched) -----------------------
    fig4_base = report["figures"]["fig4"]
    sweep_rows = {}
    reference = None
    for depth in SPEC_DEPTHS:
        previous = set_speculation_depth(depth)
        try:
            t_k, out_k, kernels_k = _run_slice(
                "fig4", "implicit", 4, samples, "vec", "batched", repeats=1
            )
        finally:
            set_speculation_depth(previous)
        if reference is None:
            reference = out_k
        else:
            assert out_k == reference, f"spec depth {depth} changed outcomes"
        spec = kernels_k.get("vec", {})
        sweep_rows[str(depth)] = {
            "seconds": round(t_k, 4),
            "tasksets_per_sec": round(fig4_base["tasksets"] / t_k, 1),
            "spec_hit": spec.get("spec-hit", 0),
            "spec_waste": spec.get("spec-waste", 0),
            "spec_width_mean": spec.get("spec-width-mean", 0.0),
        }
    report["speculation_depth_sweep"] = {
        "figure": "fig4",
        "pipeline": "batched",
        "depths": sweep_rows,
    }
    lines.append(
        "spec-k sweep (fig4 vec-batched): "
        + "  ".join(
            f"k={depth} {sweep_rows[str(depth)]['seconds']:.3f}s"
            for depth in SPEC_DEPTHS
        )
    )

    # -- verdict cache: fig4 cold vs warm ----------------------------------
    # Same process, same submission order, so serving verdicts from the
    # canonical cache must reproduce the reference outcomes exactly.
    previous_cache_env = os.environ.get("REPRO_VERDICT_CACHE")
    os.environ["REPRO_VERDICT_CACHE"] = "on"
    vcache.reconfigure()
    vcache.reset_cache_counters()
    try:
        t_cold, out_cold, _ = _run_slice(
            "fig4", "implicit", 4, samples, "qpa", "batched", repeats=1
        )
        cold_counters = vcache.cache_counters()
        t_warm, out_warm, _ = _run_slice(
            "fig4", "implicit", 4, samples, "qpa", "batched", repeats=1
        )
        warm_counters = {
            key: value - cold_counters[key]
            for key, value in vcache.cache_counters().items()
        }
    finally:
        if previous_cache_env is None:
            del os.environ["REPRO_VERDICT_CACHE"]
        else:
            os.environ["REPRO_VERDICT_CACHE"] = previous_cache_env
        vcache.reconfigure()
    assert out_cold == fig4_reference, "verdict cache (cold) diverged"
    assert out_warm == fig4_reference, "verdict cache (warm) diverged"
    warm_lookups = warm_counters["hit"] + warm_counters["miss"]
    warm_hit_rate = (
        round(warm_counters["hit"] / warm_lookups, 4) if warm_lookups else 0.0
    )
    report["verdict_cache"] = {
        "figure": "fig4",
        "pipeline": "batched",
        "kernel": "qpa",
        "cold_s": round(t_cold, 4),
        "warm_s": round(t_warm, 4),
        "speedup_warm": round(t_cold / t_warm, 3) if t_warm else float("inf"),
        "cold": cold_counters,
        "warm": warm_counters,
        "warm_hit_rate": warm_hit_rate,
    }
    lines.append(
        f"verdict cache (fig4): cold {t_cold:.3f}s  warm {t_warm:.3f}s  "
        f"warm hit rate {warm_hit_rate * 100:.1f}% "
        f"({warm_counters['hit']} hits / {warm_counters['miss']} misses)"
    )

    emit("BENCH_dbf", "\n".join(lines))
    payload = json.dumps(report, indent=2) + "\n"
    (REPO_ROOT / "BENCH_dbf.json").write_text(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_dbf.json").write_text(payload)

    # Regression tripwires, kept well below locally measured factors so
    # noisy CI runners don't flake: the kernel microbench must stay
    # clearly ahead, no figure slice may fall meaningfully behind the
    # forward baseline, and the vec kernel must never lose to qpa by
    # more than noise (its layers are supposed to be at-worst-neutral).
    assert micro_speedup >= 1.3, f"kernel microbench regressed: {micro_speedup:.2f}x"
    assert slice_speedups["fig4"] >= 0.8, (
        f"fig4 qpa pipeline regressed: {slice_speedups['fig4']:.2f}x"
    )
    assert slice_speedups["fig5"] >= 0.9, (
        f"fig5 qpa pipeline regressed: {slice_speedups['fig5']:.2f}x"
    )
    # 0.8, not 0.9: with the block slices and the cache section the
    # benchmark now runs ~2x longer, and repeated runs put the vec/qpa
    # ratio anywhere within +-25% on shared hosts (one run had vec ahead
    # 1.38x vs 1.06x on fig4, the next behind 1.11x vs 1.26x on fig5).
    # The deterministic iteration columns below carry the real signal.
    assert vec_speedups["fig4"] >= 0.8 * slice_speedups["fig4"], (
        f"fig4 vec kernel lost to qpa: {vec_speedups['fig4']:.2f}x "
        f"vs {slice_speedups['fig4']:.2f}x"
    )
    assert vec_speedups["fig5"] >= 0.8 * slice_speedups["fig5"], (
        f"fig5 vec kernel lost to qpa: {vec_speedups['fig5']:.2f}x "
        f"vs {slice_speedups['fig5']:.2f}x"
    )
    # The block kernel's raison d'être: fewer exact descent iterations on
    # the identical fig4 workload (counts are deterministic, not timings),
    # with the planner demonstrably active.  Wall-clock is recorded
    # honestly above but not gated — iteration counts are the claim.
    fig4_qpa_iters, fig4_block_iters = iter_deltas["fig4"]
    assert fig4_block_iters["iterations"] < fig4_qpa_iters["iterations"], (
        f"block kernel did not reduce exact descent iterations on fig4: "
        f"{fig4_block_iters['iterations']} vs {fig4_qpa_iters['iterations']}"
    )
    assert micro_iters["block"]["iterations"] <= micro_iters["qpa"]["iterations"]
    assert block_speedups["fig4"] >= 0.8 * slice_speedups["fig4"], (
        f"fig4 block kernel fell behind qpa beyond noise: "
        f"{block_speedups['fig4']:.2f}x vs {slice_speedups['fig4']:.2f}x"
    )
    # The warm verdict-cache pass must actually serve verdicts.
    assert warm_hit_rate > 0.5, (
        f"warm verdict-cache hit rate suspiciously low: {warm_hit_rate}"
    )
