"""Demand-kernel stack benchmark: forward vs QPA vs vec (BENCH_dbf.json).

PR 5 rewrote the demand-violation kernel of the EY/ECDF tuning descent
around a QPA backward fixed-point search, Fisher–Baruah-style upper-bound
accept screens and full-deadline warm-start anchors; PR 9 adds the ``vec``
kernel on top — closed-form own-half V*, the split LO upper-bound screen,
vectorized candidate ranking and speculative shrink batches — all
verdict-identical layers (asserted here and by
``tests/analysis/test_qpa.py`` / ``tests/analysis/test_dbf_vec.py``).
This benchmark measures four things and records them in ``BENCH_dbf.json``
at the repo root (also a CI artifact, next to ``BENCH_batch.json``):

* **kernel microbenchmark** — the from-scratch EY + ECDF tuning analysis
  on boundary-utilization uniprocessor sets under all three kernels: the
  kernel's real consumer, where the backward search, the screens and the
  vec descent machinery replace full breakpoint enumerations;
* **figure slices end-to-end** — the fig4 (implicit) and fig5
  (constrained) sweeps, generation included, with the forward-kernel
  scalar pipeline as the baseline and the QPA/vec scalar and batched
  pipelines as candidates, plus the per-kernel settle counters (QPA
  iterations, speculation hit/waste) from the batched diagnostics;
* **speculation-depth sweep** — the fig4 vec-batched slice at
  ``k = 1, 2, 4, 8`` (:func:`repro.analysis.dbf_vec.set_speculation_depth`),
  a pure cost knob whose every setting must reproduce the baseline
  outcomes exactly;
* **parity** — the non-negotiable invariant that every pipeline/kernel
  combination produces identical shard outcomes.

Measured reality vs the issue's target: PR 9 aims at >= 2x on the fig4
slice against the committed PR 5 QPA baseline (53.0 tasksets/sec).  The
vec layers cut the per-iteration cost of the descent — the closed-form V*
replaces the own-half bisection, the split screen makes each probe O(k)
instead of O(n k), speculation batches the next k candidates' screens —
but the descent trajectory itself stays sequential by design (the
bit-identical-trajectory constraint), so the end-to-end factor is bounded
by how much of fig4's wall time those per-iteration costs were.  The JSON
records the measured numbers and the per-layer settle counts that explain
them, exactly like ``BENCH_batch.json`` did for the ledger replay.

Scale knobs: ``REPRO_SAMPLES`` (default 10), ``REPRO_DBF_KERNEL`` /
``REPRO_DBF_SPEC_K`` / ``REPRO_DBF_APPROX_K`` / ``REPRO_DBF_SCAN_CHUNK``
(kernel knobs, see :mod:`repro.util.env`).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.analysis import dbf, dbf_vec
from repro.analysis.dbf import set_demand_kernel
from repro.analysis.dbf_vec import set_speculation_depth
from repro.obs import REGISTRY as OBS_REGISTRY
from repro.experiments.acceptance import (
    AcceptanceSweep,
    SweepConfig,
    kernel_summary,
)
from repro.experiments.algorithms import get_algorithm
from repro.experiments.figures import FIG45_ALGORITHMS

from conftest import RESULTS_DIR, bench_samples, emit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: the committed BENCH_batch.json fig4 m=4 scalar baseline (tasksets/sec)
#: the PR 5 kernel swap was aimed at — recorded for context in the artifact
BATCH_BASELINE_FIG4_TS_PER_SEC = 34.7

#: the committed PR 5 BENCH_dbf.json fig4 m=4 QPA throughput the PR 9 vec
#: kernel is measured against (the ">= 2x" aspiration's denominator)
QPA_BASELINE_FIG4_TS_PER_SEC = 53.0

#: speculation depths the fig4 k-sweep exercises (default depth included)
SPEC_DEPTHS = (1, 2, 4, 8)


def _microbench_tasksets():
    """Boundary-utilization uniprocessor sets — the kernel's real consumer
    (the EY/ECDF tuning analysis) at its most demand-check-intensive."""
    from repro.generator import GeneratorConfig, MCTaskSetGenerator
    from repro.util.rng import derive_rng

    generator = MCTaskSetGenerator(
        GeneratorConfig(m=1, p_high=0.5, deadline_type="constrained")
    )
    sets = []
    index = 0
    while len(sets) < 80 and index < 2000:
        rng = derive_rng("bench-dbf-tuning", index)
        index += 1
        ts = generator.generate(rng, 0.35, 0.3, 0.45)
        if ts is not None:
            sets.append(ts)
    return sets


def _run_micro(sets, kernel, repeats=3):
    from repro.analysis.ecdf import ECDFTest
    from repro.analysis.ey import EYTest

    previous = set_demand_kernel(kernel)
    try:
        best = None
        verdicts = None
        for _ in range(repeats):
            ey, ecdf = EYTest(), ECDFTest()
            start = time.process_time()
            current = [
                (ey.is_schedulable(ts), ecdf.is_schedulable(ts)) for ts in sets
            ]
            elapsed = time.process_time() - start
            if best is None or elapsed < best:
                best = elapsed
            verdicts = current
        return best, verdicts
    finally:
        set_demand_kernel(previous)


def _run_slice(label, deadline_type, m, samples, kernel, pipeline, repeats=2):
    """Best-of-N end-to-end sweep slice (generation + all algorithms).

    Also returns the per-algorithm demand-kernel summary of a single
    repeat: the registry accumulates per process, so each repeat's
    contribution is carved out with a ``since`` baseline (every repeat
    runs identical work, so any repeat's delta represents the slice).
    """
    previous = set_demand_kernel(kernel)
    try:
        config = SweepConfig(
            label=label,
            m=m,
            deadline_type=deadline_type,
            samples_per_bucket=samples,
        )
        algorithms = [get_algorithm(name) for name in FIG45_ALGORITHMS]
        best = None
        outcomes = None
        kernels = {}
        for _ in range(repeats):
            sweep = AcceptanceSweep(config, pipeline=pipeline)
            baseline = OBS_REGISTRY.counters("kernel.")
            start = time.process_time()
            current = [
                sweep.run_bucket(bucket, points, algorithms)
                for bucket, points in sweep.bucket_points().items()
            ]
            elapsed = time.process_time() - start
            kernels = kernel_summary(since=baseline)
            if best is None or elapsed < best:
                best, outcomes = elapsed, current
        return best, outcomes, kernels
    finally:
        set_demand_kernel(previous)


def test_bench_dbf_kernel_report():
    """Parity + kernel/slice throughput; emits the BENCH_dbf.json artifact."""
    samples = bench_samples()
    report = {
        "samples_per_bucket": samples,
        "kernels": {
            "forward": "chunked forward breakpoint enumeration (oracle)",
            "qpa": "upper-bound screens + QPA backward fixed-point search",
            "vec": (
                "qpa + closed-form V*, split screens, vectorized ranking, "
                "speculative shrink batches"
            ),
        },
        "host": {"python": platform.python_version()},
        "committed_batch_baseline": {
            "fig4_m4_scalar_tasksets_per_sec": BATCH_BASELINE_FIG4_TS_PER_SEC,
        },
        "committed_qpa_baseline": {
            "fig4_m4_tasksets_per_sec": QPA_BASELINE_FIG4_TS_PER_SEC,
        },
    }
    lines = []

    # -- kernel microbenchmark: the EY/ECDF tuning analysis ----------------
    sets = _microbench_tasksets()
    t_forward, v_forward = _run_micro(sets, "forward")
    dbf.reset_kernel_counters()
    t_qpa, v_qpa = _run_micro(sets, "qpa")
    counters = dbf.kernel_counters()
    t_vec, v_vec = _run_micro(sets, "vec")
    assert v_forward == v_qpa, "microbench: qpa kernel changed tuning verdicts"
    assert v_forward == v_vec, "microbench: vec kernel changed tuning verdicts"
    micro_speedup = t_forward / t_qpa if t_qpa else float("inf")
    micro_speedup_vec = t_forward / t_vec if t_vec else float("inf")
    runs = counters.get("qpa-runs", 0)
    report["microbench"] = {
        "tasksets": len(sets),
        "analyses_per_set": 2,
        "workload": "EY + ECDF from-scratch analysis, constrained m=1",
        "forward_s": round(t_forward, 4),
        "qpa_s": round(t_qpa, 4),
        "vec_s": round(t_vec, 4),
        "speedup": round(micro_speedup, 2),
        "speedup_vec": round(micro_speedup_vec, 2),
        "qpa_runs": runs,
        "qpa_iterations_mean": (
            round(counters.get("qpa-iterations", 0) / runs, 2) if runs else 0.0
        ),
        "settled": {
            key: counters.get(key, 0)
            for key in ("qpa-accept", "approx-accept", "approx-reject")
        },
    }
    lines.append(
        f"microbench  {len(sets)} sets x (EY + ECDF) analyses: "
        f"forward {t_forward:.3f}s  qpa {t_qpa:.3f}s  vec {t_vec:.3f}s  "
        f"(qpa {micro_speedup:.2f}x, vec {micro_speedup_vec:.2f}x)"
    )

    # -- figure slices ------------------------------------------------------
    report["figures"] = {}
    slice_speedups = {}
    vec_speedups = {}
    for label, deadline_type in (("fig4", "implicit"), ("fig5", "constrained")):
        t_base, out_base, _ = _run_slice(
            label, deadline_type, 4, samples, "forward", "scalar"
        )
        t_scalar, out_scalar, _ = _run_slice(
            label, deadline_type, 4, samples, "qpa", "scalar"
        )
        t_batched, out_batched, _ = _run_slice(
            label, deadline_type, 4, samples, "qpa", "batched"
        )
        t_vscalar, out_vscalar, _ = _run_slice(
            label, deadline_type, 4, samples, "vec", "scalar"
        )
        t_vbatched, out_vbatched, kernels = _run_slice(
            label, deadline_type, 4, samples, "vec", "batched"
        )
        # The non-negotiable invariant: identical shard outcomes under
        # every kernel/pipeline combination.
        assert out_base == out_scalar, f"{label}: qpa scalar diverged"
        assert out_base == out_batched, f"{label}: qpa batched diverged"
        assert out_base == out_vscalar, f"{label}: vec scalar diverged"
        assert out_base == out_vbatched, f"{label}: vec batched diverged"
        n_sets = sum(o.samples for o in out_base)
        best_qpa = min(t_scalar, t_batched)
        best_vec = min(t_vscalar, t_vbatched)
        speedup = t_base / best_qpa
        speedup_vec = t_base / best_vec
        slice_speedups[label] = speedup
        vec_speedups[label] = speedup_vec
        report["figures"][label] = {
            "m": 4,
            "tasksets": n_sets,
            "algorithms": list(FIG45_ALGORITHMS),
            "forward_scalar_s": round(t_base, 4),
            "qpa_scalar_s": round(t_scalar, 4),
            "qpa_batched_s": round(t_batched, 4),
            "vec_scalar_s": round(t_vscalar, 4),
            "vec_batched_s": round(t_vbatched, 4),
            "speedup_end_to_end": round(speedup, 3),
            "speedup_vec_end_to_end": round(speedup_vec, 3),
            "tasksets_per_sec_forward": round(n_sets / t_base, 1),
            "tasksets_per_sec_qpa": round(n_sets / best_qpa, 1),
            "tasksets_per_sec_vec": round(n_sets / best_vec, 1),
            "kernel_counters": kernels,
        }
        lines.append(
            f"{label:<7} m=4 {n_sets:>5} sets: forward-scalar {t_base:6.3f}s  "
            f"qpa {best_qpa:6.3f}s  vec {best_vec:6.3f}s  "
            f"(qpa {speedup:.2f}x, vec {speedup_vec:.2f}x end-to-end)"
        )

    # -- speculation-depth sweep (fig4, vec batched) -----------------------
    fig4_base = report["figures"]["fig4"]
    sweep_rows = {}
    reference = None
    for depth in SPEC_DEPTHS:
        previous = set_speculation_depth(depth)
        try:
            t_k, out_k, kernels_k = _run_slice(
                "fig4", "implicit", 4, samples, "vec", "batched", repeats=1
            )
        finally:
            set_speculation_depth(previous)
        if reference is None:
            reference = out_k
        else:
            assert out_k == reference, f"spec depth {depth} changed outcomes"
        spec = kernels_k.get("vec", {})
        sweep_rows[str(depth)] = {
            "seconds": round(t_k, 4),
            "tasksets_per_sec": round(fig4_base["tasksets"] / t_k, 1),
            "spec_hit": spec.get("spec-hit", 0),
            "spec_waste": spec.get("spec-waste", 0),
            "spec_width_mean": spec.get("spec-width-mean", 0.0),
        }
    report["speculation_depth_sweep"] = {
        "figure": "fig4",
        "pipeline": "batched",
        "depths": sweep_rows,
    }
    lines.append(
        "spec-k sweep (fig4 vec-batched): "
        + "  ".join(
            f"k={depth} {sweep_rows[str(depth)]['seconds']:.3f}s"
            for depth in SPEC_DEPTHS
        )
    )

    emit("BENCH_dbf", "\n".join(lines))
    payload = json.dumps(report, indent=2) + "\n"
    (REPO_ROOT / "BENCH_dbf.json").write_text(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_dbf.json").write_text(payload)

    # Regression tripwires, kept well below locally measured factors so
    # noisy CI runners don't flake: the kernel microbench must stay
    # clearly ahead, no figure slice may fall meaningfully behind the
    # forward baseline, and the vec kernel must never lose to qpa by
    # more than noise (its layers are supposed to be at-worst-neutral).
    assert micro_speedup >= 1.3, f"kernel microbench regressed: {micro_speedup:.2f}x"
    assert slice_speedups["fig4"] >= 0.8, (
        f"fig4 qpa pipeline regressed: {slice_speedups['fig4']:.2f}x"
    )
    assert slice_speedups["fig5"] >= 0.9, (
        f"fig5 qpa pipeline regressed: {slice_speedups['fig5']:.2f}x"
    )
    assert vec_speedups["fig4"] >= 0.9 * slice_speedups["fig4"], (
        f"fig4 vec kernel lost to qpa: {vec_speedups['fig4']:.2f}x "
        f"vs {slice_speedups['fig4']:.2f}x"
    )
    assert vec_speedups["fig5"] >= 0.9 * slice_speedups["fig5"], (
        f"fig5 vec kernel lost to qpa: {vec_speedups['fig5']:.2f}x "
        f"vs {slice_speedups['fig5']:.2f}x"
    )
