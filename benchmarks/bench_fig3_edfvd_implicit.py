"""Figure 3: acceptance ratio vs UB — implicit deadlines, EDF-VD algorithms.

Series: CA-UDP-EDF-VD, CU-UDP-EDF-VD vs CA(nosort)-F-F-EDF-VD (the prior
algorithm with the 8/3 speed-up bound), for m in {2, 4, 8}.

Paper's headline numbers for this figure: UDP improves schedulability by up
to 13.3% (m=2), 22.8% (m=4) and 28.1% (m=8), with the gap growing in m.
"""

from repro.experiments import fig3
from repro.experiments.report import improvement_summary, render_sweep

from conftest import bench_m_values, bench_samples, emit


def test_fig3_acceptance_ratio(once):
    result = once(fig3, samples=bench_samples(), m_values=bench_m_values())
    sections = []
    for key, sweep in result.sweeps.items():
        sections.append(render_sweep(sweep, title=f"Figure 3 ({key})"))
        sections.append(
            improvement_summary(
                sweep,
                ["ca-udp-edf-vd", "cu-udp-edf-vd"],
                ["ca-nosort-f-f-edf-vd"],
            )
        )
    emit("fig3", "\n\n".join(sections))
    # Shape assertions (paper): UDP never loses overall, and every curve
    # decays to zero at UB -> 1.
    for sweep in result.sweeps.values():
        assert sweep.ratios["cu-udp-edf-vd"][-1] <= 0.5
        assert (
            sweep.max_improvement("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd") >= 0.0
        )
