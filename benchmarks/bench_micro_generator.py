"""Micro-benchmarks: task-set generation and utilization-vector draws."""

import numpy as np

from repro.generator import MCTaskSetGenerator, randfixedsum, uunifast_discard
from repro.util import derive_rng


def test_bench_generate_taskset(benchmark):
    gen = MCTaskSetGenerator(m=4)
    rng = derive_rng("bench-gen")
    ts = benchmark(gen.generate, rng, 0.6, 0.3, 0.3)
    assert ts is not None


def test_bench_uunifast_discard_easy(benchmark):
    rng = np.random.default_rng(0)
    values = benchmark(uunifast_discard, rng, 10, 3.0, 0.001, 0.99)
    assert values is not None


def test_bench_randfixedsum_hard_region(benchmark):
    """The regime where rejection sampling explodes but Stafford's
    algorithm stays O(n): total close to n * u_max."""
    rng = np.random.default_rng(1)
    values = benchmark(randfixedsum, rng, 10, 9.5, 0.001, 0.99)
    assert values is not None
