"""Ablations around the AMC configuration used in Figures 4-6.

1. AMC-max vs AMC-rtb under CU-UDP: the paper uses AMC-max; this measures
   how much of the schedulability actually comes from the tighter analysis.
2. Deadline-monotonic vs Audsley's OPA priority assignment (the paper does
   not specify; DESIGN.md section 5 documents our DM default).
"""

from repro.experiments import SweepConfig, get_algorithm
from repro.experiments.acceptance import AcceptanceSweep
from repro.experiments.report import render_sweep
from repro.experiments.weighted import weighted_acceptance_ratio

from conftest import bench_samples, emit

ALGORITHM_NAMES = ("cu-udp-amc", "cu-udp-amc-rtb", "cu-udp-amc-opa")


def test_ablation_amc_variants(once):
    def run():
        config = SweepConfig(
            label="ablation-amc",
            m=2,
            deadline_type="constrained",
            samples_per_bucket=bench_samples(),
            ub_min=0.4,
        )
        algos = [get_algorithm(name) for name in ALGORITHM_NAMES]
        return AcceptanceSweep(config).run(algos)

    sweep = once(run)
    war = {
        name: weighted_acceptance_ratio(sweep.buckets, ratios)
        for name, ratios in sweep.ratios.items()
    }
    lines = [render_sweep(sweep, title="Ablation: AMC variants (m=2, constrained)")]
    lines.append("")
    lines.extend(f"WAR({name}) = {value:.3f}" for name, value in war.items())
    emit("ablation_amc", "\n".join(lines))
    # AMC-max dominates AMC-rtb per task, hence per partition too.
    assert war["cu-udp-amc"] >= war["cu-udp-amc-rtb"] - 1e-9
    # OPA is optimal for OPA-compatible tests: never worse than DM.
    assert war["cu-udp-amc-opa"] >= war["cu-udp-amc"] - 1e-9
