"""Empirical speed-up factors vs the theoretical 8/3 bound.

Measures the minimum processor speed at which partitioned EDF-VD succeeds
(CU-UDP vs the no-sort first-fit baseline) over feasible random workloads.
Both inherit the 8/3 bound (Baruah et al. 2014, Theorem 9); the interesting
output is how far below the bound each strategy sits, and that UDP needs no
more speed than the baseline on average.
"""

import statistics

from repro.analysis import EDFVDTest
from repro.analysis.speedup import (
    EDFVD_PARTITIONED_SPEEDUP_BOUND,
    mc_feasible_load,
    minimum_speedup,
)
from repro.core import ca_nosort_f_f, cu_udp, partition
from repro.generator import MCTaskSetGenerator
from repro.util import derive_rng, format_table

from conftest import bench_samples, emit

M = 2


def _measure(sample_count: int):
    gen = MCTaskSetGenerator(m=M)
    rng = derive_rng("bench-speedup")
    test = EDFVDTest()
    rows = {"cu-udp": [], "ca-nosort-f-f": []}
    produced = 0
    while produced < sample_count:
        ts = gen.generate(rng, 0.85, 0.45, 0.4)
        if ts is None or mc_feasible_load(ts, M) > 1.0:
            continue
        produced += 1
        for name, strategy in (
            ("cu-udp", cu_udp()),
            ("ca-nosort-f-f", ca_nosort_f_f()),
        ):
            factor = minimum_speedup(
                ts,
                lambda t, s=strategy: partition(t, M, test, s).success,
                hi=4.0,
                tolerance=0.02,
            )
            assert factor is not None
            rows[name].append(factor)
    return rows


def test_empirical_speedup_within_bound(once):
    rows = once(_measure, bench_samples(12))
    table = []
    for name, factors in rows.items():
        table.append(
            [
                name,
                min(factors),
                statistics.mean(factors),
                max(factors),
            ]
        )
    text = format_table(
        ["strategy", "min", "mean", "max"],
        table,
        title=(
            "empirical speed-up on feasible sets (m=2); "
            f"theoretical bound {EDFVD_PARTITIONED_SPEEDUP_BOUND:.3f}"
        ),
    )
    emit("speedup", text)
    for factors in rows.values():
        assert max(factors) <= EDFVD_PARTITIONED_SPEEDUP_BOUND + 0.02
    # UDP should not need more speed than the baseline on average.
    assert statistics.mean(rows["cu-udp"]) <= statistics.mean(
        rows["ca-nosort-f-f"]
    ) + 1e-9
