"""Figure 4: acceptance ratio vs UB — implicit deadlines, no speed-up bound.

Series: CU-UDP-AMC, CU-UDP-ECDF vs ECA-Wu-F-EY and CA-F-F-EY, m in {2,4,8}.

Paper's headline numbers: improvements up to 3.2/3.8/9.5% under AMC and
9.8/15.2/15.7% under ECDF for m = 2/4/8.
"""

from repro.experiments import fig4
from repro.experiments.report import improvement_summary, render_sweep

from conftest import bench_m_values, bench_samples, emit


def test_fig4_acceptance_ratio(once):
    result = once(fig4, samples=bench_samples(), m_values=bench_m_values())
    sections = []
    for key, sweep in result.sweeps.items():
        sections.append(render_sweep(sweep, title=f"Figure 4 ({key})"))
        sections.append(
            improvement_summary(
                sweep,
                ["cu-udp-amc", "cu-udp-ecdf"],
                ["eca-wu-f-ey", "ca-f-f-ey"],
            )
        )
    emit("fig4", "\n\n".join(sections))
    for sweep in result.sweeps.values():
        # Everything decays under saturation.
        assert sweep.ratios["cu-udp-ecdf"][-1] <= 0.5
