"""From-scratch vs incremental ``partition()`` on an ECDF sweep slice.

The partitioning hot loop runs the uniprocessor test once per (task,
candidate core) probe; PR 2 introduced per-core analysis contexts so those
probes reuse utilization accumulators and memoized dbf state instead of
rebuilding everything.  This benchmark drives both paths over the same
Figure-5 slice (constrained deadlines, PH = 0.5 — the configuration whose
admission test, ECDF, is the most expensive in the suite) across the
paper's processor sweep, asserts the two paths stay bit-identical, and
records the speedup trajectory in ``BENCH_partition.json`` (uploaded as a
CI artifact).

Scale knobs: ``REPRO_SAMPLES`` (task sets per UB bucket, default 10) and
``REPRO_M`` (processor counts, default ``2,4,8``).  At paper-scale
parameters the incremental path is >= 3x faster in aggregate.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.experiments import get_algorithm
from repro.experiments.acceptance import AcceptanceSweep, SweepConfig

from conftest import RESULTS_DIR, bench_m_values, bench_samples, emit

#: The slice mirrors Figure 5's mid-to-high load region, where admission
#: probes actually exercise the demand analysis (below it everything is
#: schedulable at a glance; far above it the utilization pre-screen
#: settles probes in O(1) for both paths).
UB_RANGE = (0.4, 1.0)


def slice_tasksets(m: int, samples: int):
    config = SweepConfig(
        label="fig5", m=m, deadline_type="constrained", samples_per_bucket=samples
    )
    sweep = AcceptanceSweep(config)
    tasksets = []
    for bucket, points in sorted(sweep.bucket_points().items()):
        if UB_RANGE[0] <= bucket <= UB_RANGE[1]:
            tasksets.extend(sweep.tasksets_for_bucket(bucket, points))
    return tasksets


def time_partitions(algorithm, tasksets, m: int, incremental: bool, repeats: int = 3):
    """Best-of-N CPU time plus the partition results (for parity checks)."""
    best = None
    results = None
    for _ in range(repeats):
        start = time.process_time()
        current = [
            algorithm.partition(ts, m, incremental=incremental) for ts in tasksets
        ]
        elapsed = time.process_time() - start
        if best is None or elapsed < best:
            best, results = elapsed, current
    return best, results


@pytest.mark.parametrize("m", bench_m_values())
@pytest.mark.parametrize("incremental", [False, True], ids=["from-scratch", "incremental"])
def test_bench_partition_ecdf(benchmark, m, incremental):
    """Per-mode wall-time samples for pytest-benchmark's own reporting."""
    algorithm = get_algorithm("cu-udp-ecdf")
    tasksets = slice_tasksets(m, bench_samples())
    result = benchmark.pedantic(
        lambda: [
            algorithm.partition(ts, m, incremental=incremental) for ts in tasksets
        ],
        rounds=1,
        iterations=1,
    )
    assert len(result) == len(tasksets)


def test_bench_partition_speedup_report():
    """Parity + speedup summary; emits the BENCH_partition.json artifact."""
    algorithm = get_algorithm("cu-udp-ecdf")
    samples = bench_samples()
    report = {"algorithm": "cu-udp-ecdf", "samples_per_bucket": samples, "m": {}}
    total_scratch = total_incremental = 0.0
    lines = ["m    tasksets   from-scratch   incremental   speedup"]
    for m in bench_m_values():
        tasksets = slice_tasksets(m, samples)
        t_inc, r_inc = time_partitions(algorithm, tasksets, m, incremental=True)
        t_fs, r_fs = time_partitions(algorithm, tasksets, m, incremental=False)
        for fast, slow in zip(r_inc, r_fs, strict=True):
            assert fast.success == slow.success
            assert fast.assignment == slow.assignment
            assert fast.cores == slow.cores
        total_scratch += t_fs
        total_incremental += t_inc
        report["m"][str(m)] = {
            "tasksets": len(tasksets),
            "from_scratch_s": round(t_fs, 4),
            "incremental_s": round(t_inc, 4),
            "speedup": round(t_fs / t_inc, 3),
        }
        lines.append(
            f"{m:<6}{len(tasksets):<11}{t_fs:>10.3f}s {t_inc:>12.3f}s "
            f"{t_fs / t_inc:>8.2f}x"
        )
    aggregate = total_scratch / total_incremental
    report["aggregate_speedup"] = round(aggregate, 3)
    lines.append(f"aggregate speedup: {aggregate:.2f}x")
    emit("BENCH_partition", "\n".join(lines))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_partition.json").write_text(
        json.dumps(report, indent=2) + "\n"
    )
    # Regression tripwire: the incremental path must stay clearly ahead at
    # any scale (>= 3x at paper-scale parameters; the floor here is kept
    # below that so small CI slices on noisy runners don't flake).
    assert aggregate >= 2.0, f"incremental speedup regressed: {aggregate:.2f}x"
