"""Shared configuration for the benchmark harness.

Every figure of the paper has one bench module here.  Scale knobs:

* ``REPRO_SAMPLES`` — task sets per ``UB`` bucket (default 10 for benches;
  the paper used 1000).  Full-scale reproduction:
  ``REPRO_SAMPLES=1000 pytest benchmarks/ --benchmark-only``.
* ``REPRO_M`` — comma-separated processor counts (default ``2,4,8``, the
  paper's sweep; use ``2`` for a quick pass).

Rendered tables (the same rows/series the paper plots) are printed and
written to ``benchmarks/results/``.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

_SRC = str(Path(__file__).resolve().parent.parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

RESULTS_DIR = Path(__file__).resolve().parent / "results"


def bench_samples(default: int = 10) -> int:
    """Task sets per bucket for bench runs."""
    from repro.util.env import samples_from_env

    return samples_from_env(default)


def bench_m_values() -> tuple[int, ...]:
    """Processor counts to sweep."""
    from repro.util.env import m_values_from_env

    return m_values_from_env()


def emit(name: str, text: str) -> None:
    """Print a rendered table and persist it under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


@pytest.fixture
def once(benchmark):
    """Run the benched callable exactly once (sweeps are their own repetition)."""

    def run(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return run
