"""Figure 5: acceptance ratio vs UB — constrained deadlines.

Series as in Figure 4 but with deadlines drawn uniformly from [C_H, T].

Paper's headline numbers: improvements up to 3.5/13.1/29.7% under AMC and
12.6/20.8/36.2% under ECDF for m = 2/4/8.
"""

from repro.experiments import fig5
from repro.experiments.report import improvement_summary, render_sweep

from conftest import bench_m_values, bench_samples, emit


def test_fig5_acceptance_ratio(once):
    result = once(fig5, samples=bench_samples(), m_values=bench_m_values())
    sections = []
    for key, sweep in result.sweeps.items():
        sections.append(render_sweep(sweep, title=f"Figure 5 ({key})"))
        sections.append(
            improvement_summary(
                sweep,
                ["cu-udp-amc", "cu-udp-ecdf"],
                ["eca-wu-f-ey", "ca-f-f-ey"],
            )
        )
    emit("fig5", "\n\n".join(sections))
    for sweep in result.sweeps.values():
        assert sweep.ratios["cu-udp-ecdf"][-1] <= 0.5
