"""Campaign-fabric throughput: serial vs pool vs cluster, and retry cost.

Drives the fig3 campaign slice (implicit deadlines, the paper's headline
sweep, all three processor counts — 30 shards) through every executor
backend, asserts the fabric contract — identical shard outcomes
everywhere — and records wall-clock shard throughput in
``BENCH_fabric.json`` at the repo root (also uploaded as a CI artifact).
A second pass measures the price of fault tolerance: the same cluster
run with 10% of units SIGKILLing their worker mid-shard (via
:mod:`repro.runner.faults`, at-most-once markers so retries succeed),
reported as an overhead factor over the clean cluster run.

Wall time, not CPU time: the parallel backends spend their budget in
worker subprocesses, and the fault pass *is* latency (kill detection,
respawn, backoff) rather than compute.  Speedups are bounded by the
host's CPU count (recorded in the artifact) — on a one-CPU runner the
parallel rows measure pure fabric overhead, which is the regression
signal CI actually needs.

Scale knob: ``REPRO_SAMPLES`` (task sets per UB bucket, default 50 here
— large enough that worker startup amortizes and the parallel backends
show real speedup).  The worker count is pinned at 4 so numbers stay
comparable across runs.
"""

from __future__ import annotations

import json
import os
import platform
import time
from pathlib import Path

from repro.experiments.acceptance import SweepConfig
from repro.experiments.figures import FIG3_ALGORITHMS
from repro.runner import ClusterBackend, decompose_sweep, execute_units, unit_key

from conftest import RESULTS_DIR, bench_samples, emit

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Worker count for the parallel backends (pinned for comparability).
JOBS = 4

#: The fig3 processor sweep — one campaign-shaped batch of shards.
M_VALUES = (2, 4, 8)

#: Injected unit-loss rate for the fault-tolerance pass.
LOSS_RATE = 0.1


def fabric_units(samples: int):
    """Every shard of the fig3 campaign slice, across all m values.

    One sweep alone is ~10 shards dominated by its high-UB tail; batching
    the whole m sweep (as ``repro campaign`` does) gives the backends 30
    shards of varied cost — actual load to balance.
    """
    units = []
    for m in M_VALUES:
        config = SweepConfig(label="fig3", m=m, samples_per_bucket=samples)
        units.extend(decompose_sweep(config, FIG3_ALGORITHMS))
    return units


def doomed_rate(units) -> tuple[float, int]:
    """A ``crash:rate=`` threshold that dooms ~``LOSS_RATE`` of ``units``.

    The rate selector compares each unit's key-hash fraction against the
    threshold; on a small slice a nominal 0.1 can select zero units, so
    the bench derives the threshold from the actual key population —
    deterministic, and honest about how many units it kills.
    """
    fractions = sorted(int(unit_key(u)[:8], 16) / 0xFFFFFFFF for u in units)
    doomed = max(1, round(LOSS_RATE * len(units)))
    return fractions[doomed - 1] + 1e-9, doomed


def cluster_backend() -> ClusterBackend:
    # Tight failure-detection timings so the fault pass measures the
    # machinery, not a production-scale 300s lease.
    return ClusterBackend(JOBS, heartbeat_interval=0.2, lease_timeout=60.0)


def timed_units(units, *, backend, jobs, repeats=2):
    """Best-of-N wall-clock pass of the whole batch through one backend."""
    best = None
    result = None
    for _ in range(repeats):
        instance = cluster_backend() if backend == "cluster" else backend
        start = time.perf_counter()
        current = execute_units(units, jobs=jobs, backend=instance)
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best, result = elapsed, current
    return best, result


def test_bench_fabric_report(tmp_path, monkeypatch):
    """Backend parity + throughput + retry overhead; emits BENCH_fabric.json."""
    samples = bench_samples(50)
    units = fabric_units(samples)
    shards = len(units)

    monkeypatch.delenv("REPRO_RUNNER_FAULT", raising=False)
    monkeypatch.delenv("REPRO_RUNNER_FAULT_DIR", raising=False)

    t_serial, r_serial = timed_units(units, backend="serial", jobs=1)
    t_pool, r_pool = timed_units(units, backend="pool", jobs=JOBS)
    t_cluster, r_cluster = timed_units(units, backend="cluster", jobs=JOBS)
    # The non-negotiable fabric contract: identical results everywhere.
    assert r_pool == r_serial, "pool backend diverged from serial"
    assert r_cluster == r_serial, "cluster backend diverged from serial"

    # Fault pass: ~10% of units kill their worker once, then succeed.
    rate, doomed = doomed_rate(units)
    monkeypatch.setenv("REPRO_RUNNER_FAULT", f"crash:rate={rate!r}")
    monkeypatch.setenv("REPRO_RUNNER_FAULT_DIR", str(tmp_path / "markers"))
    faulty = cluster_backend()
    start = time.perf_counter()
    r_faulty = execute_units(units, jobs=JOBS, backend=faulty)
    t_faulty = time.perf_counter() - start
    assert r_faulty == r_serial, "fault-recovered run diverged from serial"
    overhead = t_faulty / t_cluster

    backends = {
        "serial": {"jobs": 1, "seconds": round(t_serial, 4)},
        "pool": {"jobs": JOBS, "seconds": round(t_pool, 4)},
        "cluster": {"jobs": JOBS, "seconds": round(t_cluster, 4)},
    }
    for row, seconds in (("serial", t_serial), ("pool", t_pool),
                         ("cluster", t_cluster)):
        backends[row]["shards_per_sec"] = round(shards / seconds, 2)
        backends[row]["speedup_vs_serial"] = round(t_serial / seconds, 3)

    report = {
        "figure": "fig3",
        "m_values": list(M_VALUES),
        "samples_per_bucket": samples,
        "shards": shards,
        "algorithms": list(FIG3_ALGORITHMS),
        # cpus matters for reading the speedups: on a single-CPU host the
        # parallel backends can only measure their overhead, never a gain.
        "host": {
            "python": platform.python_version(),
            "cpus": len(os.sched_getaffinity(0))
            if hasattr(os, "sched_getaffinity")
            else (os.cpu_count() or 1),
        },
        "backends": backends,
        "fault_tolerance": {
            "loss_rate": LOSS_RATE,
            "doomed_units": doomed,
            "clean_cluster_s": round(t_cluster, 4),
            "faulty_cluster_s": round(t_faulty, 4),
            "overhead_factor": round(overhead, 3),
            "retries": faulty.stats["retries"],
            "lost_workers": faulty.stats["lost_workers"],
            "duplicates": faulty.stats["duplicates"],
        },
    }

    lines = [f"backend   jobs   {shards} shards    shards/s   vs serial"]
    for row in ("serial", "pool", "cluster"):
        b = backends[row]
        lines.append(
            f"{row:<9} {b['jobs']:<6} {b['seconds']:>9.3f}s "
            f"{b['shards_per_sec']:>9.1f} {b['speedup_vs_serial']:>9.2f}x"
        )
    lines.append(
        f"cluster +{LOSS_RATE:.0%} worker loss ({doomed} doomed shards): "
        f"{t_faulty:.3f}s ({overhead:.2f}x clean, "
        f"{faulty.stats['retries']} retries, "
        f"{faulty.stats['lost_workers']} workers lost)"
    )

    emit("BENCH_fabric", "\n".join(lines))
    payload = json.dumps(report, indent=2) + "\n"
    (REPO_ROOT / "BENCH_fabric.json").write_text(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_fabric.json").write_text(payload)

    # Regression tripwires, deliberately loose for noisy CI runners: the
    # fault pass must actually have exercised recovery, and surviving 10%
    # worker loss must not cost an order of magnitude over a clean run.
    assert faulty.stats["retries"] >= 1, "fault injection never fired"
    assert faulty.stats["lost_workers"] >= 1
    assert overhead < 10.0, f"retry overhead blew up: {overhead:.2f}x"
