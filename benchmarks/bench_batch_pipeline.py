"""Scalar vs batched end-to-end sweep throughput (the batch pipeline).

The columnar batch pipeline (PR 4) threads one ``TaskSetBatch`` per bucket
through the exact prefilter bank and the utilization-ledger replay before
anything falls back to the per-taskset path.  This benchmark drives both
pipelines over the same figure slices — generation included, exactly what
one campaign shard executes — asserts their outcomes stay bit-identical,
and records the throughput trajectory in ``BENCH_batch.json`` at the repo
root (also uploaded as a CI artifact).

Measured reality vs the issue's target: the batched pipeline settles the
*EDF-VD* sweeps (fig3/fig6a) almost entirely from columns — the screen is
complete, no task objects are ever built — which is where the largest
end-to-end factors come from (~2-2.5x serial; more at paper scale where
generation amortizes).  On fig4 the factor is bounded near 1x: ~80% of
that sweep's runtime is the EY virtual-deadline descent on gap probes,
which no exact columnar shortcut can settle (the issue's 3x aspiration for
fig4 is not reachable under the bit-identical-results constraint; the JSON
records the honest number and the settled fractions that explain it).

Scale knobs: ``REPRO_SAMPLES`` (task sets per UB bucket, default 10) and
``REPRO_M`` (processor counts for the fig3 rows, default ``2,4,8``).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro.experiments.acceptance import (
    AcceptanceSweep,
    SweepConfig,
    settled_summary,
)
from repro.experiments.algorithms import get_algorithm
from repro.experiments.figures import FIG3_ALGORITHMS, FIG45_ALGORITHMS

from conftest import RESULTS_DIR, bench_m_values, bench_samples, emit

#: The committed artifact lives at the repo root (the issue's contract);
#: a copy lands in benchmarks/results/ like every other bench output.
REPO_ROOT = Path(__file__).resolve().parent.parent

#: (figure label, deadline type, algorithm names, m values) rows.
def bench_rows():
    return [
        ("fig3", "implicit", FIG3_ALGORITHMS, bench_m_values()),
        ("fig4", "implicit", FIG45_ALGORITHMS, (4,)),
    ]


def run_pipeline(label, deadline_type, names, m, samples, pipeline, repeats=2):
    """Best-of-N end-to-end sweep (generation + all algorithms)."""
    config = SweepConfig(
        label=label,
        m=m,
        deadline_type=deadline_type,
        samples_per_bucket=samples,
    )
    algorithms = [get_algorithm(name) for name in names]
    best = None
    outcomes = None
    for _ in range(repeats):
        sweep = AcceptanceSweep(config, pipeline=pipeline)
        start = time.process_time()
        current = [
            sweep.run_bucket(bucket, points, algorithms)
            for bucket, points in sweep.bucket_points().items()
        ]
        elapsed = time.process_time() - start
        if best is None or elapsed < best:
            best, outcomes = elapsed, current
    return best, outcomes


def settled_fractions(outcomes):
    """Aggregate per-mechanism settled fractions across algorithms."""
    summary = settled_summary(outcomes)
    totals: dict[str, int] = {}
    for counts in summary.values():
        for source, count in counts.items():
            totals[source] = totals.get(source, 0) + count
    grand = sum(totals.values())
    if not grand:
        return {}
    return {source: round(count / grand, 4) for source, count in totals.items()}


def test_bench_batch_pipeline_report():
    """Parity + throughput summary; emits the BENCH_batch.json artifact."""
    samples = bench_samples()
    report = {
        "samples_per_bucket": samples,
        "pipelines": {
            "scalar": "per-taskset AcceptanceSweep loop (incremental probes)",
            "batched": "columnar prefilters + ledger replay + fallback",
        },
        "host": {"python": platform.python_version()},
        "figures": {},
    }
    lines = ["figure  m   tasksets   scalar       batched      speedup  ts/s(batched)"]
    speedups: dict[str, dict[int, float]] = {}
    for label, deadline_type, names, m_values in bench_rows():
        fig_report = {}
        for m in m_values:
            t_scalar, out_scalar = run_pipeline(
                label, deadline_type, names, m, samples, "scalar"
            )
            t_batched, out_batched = run_pipeline(
                label, deadline_type, names, m, samples, "batched"
            )
            # The non-negotiable invariant: identical shard outcomes.
            assert out_scalar == out_batched, (
                f"{label} m={m}: batched pipeline diverged from scalar"
            )
            n_sets = sum(o.samples for o in out_scalar)
            speedup = t_scalar / t_batched
            speedups.setdefault(label, {})[m] = speedup
            fig_report[str(m)] = {
                "tasksets": n_sets,
                "algorithms": list(names),
                "scalar_s": round(t_scalar, 4),
                "batched_s": round(t_batched, 4),
                "speedup": round(speedup, 3),
                "tasksets_per_sec_scalar": round(n_sets / t_scalar, 1),
                "tasksets_per_sec_batched": round(n_sets / t_batched, 1),
                "settled_fractions": settled_fractions(out_batched),
            }
            lines.append(
                f"{label:<7} {m:<3} {n_sets:<10} {t_scalar:>8.3f}s "
                f"{t_batched:>10.3f}s {speedup:>8.2f}x "
                f"{n_sets / t_batched:>10.0f}"
            )
        report["figures"][label] = fig_report

    emit("BENCH_batch", "\n".join(lines))
    payload = json.dumps(report, indent=2) + "\n"
    (REPO_ROOT / "BENCH_batch.json").write_text(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_batch.json").write_text(payload)

    # Regression tripwires, kept well below the locally measured factors
    # so noisy CI runners don't flake: the EDF-VD sweep must stay clearly
    # ahead end-to-end, and fig4 (EY-descent dominated, measured ~1.0x;
    # see module docstring) must not fall meaningfully behind the scalar
    # path — 0.7 leaves a wide margin for tiny-sample CI timing noise
    # while still catching a real batched-pipeline overhead regression.
    fig3 = speedups["fig3"]
    assert max(fig3.values()) >= 1.5, f"fig3 batched speedup regressed: {fig3}"
    assert speedups["fig4"][4] >= 0.7, (
        f"fig4 batched pipeline regressed: {speedups['fig4'][4]:.2f}x"
    )
