"""Micro-benchmarks: throughput of each uniprocessor schedulability test.

These time a single ``is_schedulable`` call on a fixed mid-load task set —
the inner-loop cost that dominates every partitioning experiment.
"""

import pytest

from repro.analysis import (
    AMCmaxTest,
    AMCrtbTest,
    ECDFTest,
    EDFVDTest,
    EYTest,
)
from repro.generator import MCTaskSetGenerator
from repro.util import derive_rng


def _fixed_taskset(deadline_type: str):
    gen = MCTaskSetGenerator(m=1, n_min=6, n_max=6, deadline_type=deadline_type)
    ts = gen.generate(derive_rng("micro", deadline_type), 0.6, 0.3, 0.3)
    assert ts is not None
    return ts


IMPLICIT = _fixed_taskset("implicit")
CONSTRAINED = _fixed_taskset("constrained")


@pytest.mark.parametrize(
    "test",
    [EDFVDTest(), EYTest(), ECDFTest(), AMCrtbTest(), AMCmaxTest()],
    ids=lambda t: t.name,
)
def test_bench_implicit(benchmark, test):
    result = benchmark(test.is_schedulable, IMPLICIT)
    assert isinstance(result, bool)


@pytest.mark.parametrize(
    "test",
    [EYTest(), ECDFTest(), AMCrtbTest(), AMCmaxTest()],
    ids=lambda t: t.name,
)
def test_bench_constrained(benchmark, test):
    result = benchmark(test.is_schedulable, CONSTRAINED)
    assert isinstance(result, bool)
