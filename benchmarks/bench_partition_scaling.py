"""Scaling: cost of one partitioning attempt as m (and n ~ 5m) grows.

The paper reports its algorithms scale to m = 8; this measures the actual
cost of a CU-UDP + ECDF partition at each m, which is the per-sample cost
of the Figure 4/5 experiments (the dbf tuning inside the admission test is
the dominant term).
"""

import pytest

from repro.experiments import get_algorithm
from repro.generator import MCTaskSetGenerator
from repro.util import derive_rng


def _taskset(m: int):
    gen = MCTaskSetGenerator(m=m)
    ts = gen.generate(derive_rng("scaling", m), 0.5, 0.25, 0.3)
    assert ts is not None
    return ts


@pytest.mark.parametrize("m", [2, 4, 8])
def test_bench_partition_cu_udp_ecdf(benchmark, m):
    algo = get_algorithm("cu-udp-ecdf")
    ts = _taskset(m)
    result = benchmark(algo.partition, ts, m)
    assert result.m == m


@pytest.mark.parametrize("m", [2, 4, 8])
def test_bench_partition_cu_udp_edfvd(benchmark, m):
    algo = get_algorithm("cu-udp-edf-vd")
    ts = _taskset(m)
    result = benchmark(algo.partition, ts, m)
    assert result.m == m
