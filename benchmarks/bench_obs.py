"""Observability overhead and the committed obs snapshot (BENCH_obs.json).

PR 6 threads :mod:`repro.obs` through the analysis -> partition ->
campaign stack under the rule that recording is observe-only and the
off-path costs one branch.  This benchmark runs the same fig4 slice
(implicit deadlines, m=4, generation included) under all three recorders
and records in ``BENCH_obs.json`` at the repo root (also a CI artifact):

* **parity** — the non-negotiable invariant that every recorder mode
  produces identical shard outcomes (the differential test suite asserts
  the same over cache bytes; here it rides the perf measurement);
* **overhead** — wall cost of ``metrics`` and ``trace`` relative to the
  ``off`` (null-recorder) run, plus the null run's absolute throughput
  next to the committed ``BENCH_dbf.json`` fig4 figure it must not
  regress (the issue budgets < 3% for the null recorder; the tripwires
  below stay looser so noisy CI runners don't flake);
* **the snapshot itself** — the artifact doubles as the documented
  example of the ``repro-obs-snapshot/1`` schema: it IS the ``to_json``
  export of the traced run, with a ``bench`` block appended, and the
  matching Chrome-trace dump lands in ``benchmarks/results/``.

Scale knob: ``REPRO_SAMPLES`` (default 10).
"""

from __future__ import annotations

import json
import platform
import time
from pathlib import Path

from repro import obs
from repro.experiments.acceptance import SweepConfig
from repro.experiments.figures import FIG45_ALGORITHMS
from repro.runner.pool import run_sweep

from conftest import RESULTS_DIR, bench_samples, emit

REPO_ROOT = Path(__file__).resolve().parent.parent

RECORDERS = (
    ("off", obs.NullRecorder),
    ("metrics", obs.MetricsRecorder),
    ("trace", obs.TraceRecorder),
)


def _run_slice(samples, recorder_factory, repeats=2):
    """Best-of-N fig4 slice under ``recorder_factory``; goes through the
    serial shard runner so the span/latency instrumentation is on the
    measured path, exactly as a ``repro figure`` run drives it."""
    config = SweepConfig(
        label="fig4", m=4, deadline_type="implicit",
        samples_per_bucket=samples,
    )
    previous = obs.set_recorder(recorder_factory(obs.REGISTRY))
    try:
        best = None
        outcomes = None
        for _ in range(repeats):
            obs.clear()
            diagnostics = []
            start = time.process_time()
            run_sweep(
                config, list(FIG45_ALGORITHMS), jobs=1,
                diagnostics=diagnostics,
            )
            elapsed = time.process_time() - start
            if best is None or elapsed < best:
                best = elapsed
            outcomes = diagnostics
        # captured before the recorder is swapped back: the traced run's
        # registry + spans become the committed snapshot example
        snapshot = obs.to_json(obs.REGISTRY, obs.spans(), mode=obs.mode())
        spans = obs.spans()
        return best, outcomes, snapshot, spans
    finally:
        obs.set_recorder(previous)
        obs.clear()


def test_bench_obs_report():
    """Recorder parity + overhead; emits the BENCH_obs.json artifact."""
    samples = bench_samples()
    times = {}
    outcomes = {}
    snapshot = None
    spans = []
    for mode, factory in RECORDERS:
        times[mode], outcomes[mode], snap, recorded = _run_slice(
            samples, factory
        )
        if mode == "trace":
            snapshot, spans = snap, recorded

    # The non-negotiable invariant: recording never changes results.
    assert outcomes["off"] == outcomes["metrics"], "metrics recorder diverged"
    assert outcomes["off"] == outcomes["trace"], "trace recorder diverged"

    n_sets = sum(o.samples for o in outcomes["off"])
    overhead = {
        mode: times[mode] / times["off"] - 1.0
        for mode in ("metrics", "trace")
    }
    snapshot["bench"] = {
        "workload": "fig4 slice, implicit m=4, batched pipeline",
        "samples_per_bucket": samples,
        "tasksets": n_sets,
        "algorithms": list(FIG45_ALGORITHMS),
        "host": {"python": platform.python_version()},
        "seconds": {mode: round(times[mode], 4) for mode, _ in RECORDERS},
        "overhead_vs_off": {
            mode: round(value, 4) for mode, value in overhead.items()
        },
        "tasksets_per_sec_off": round(n_sets / times["off"], 1),
    }

    lines = [
        f"fig4 m=4 {n_sets} sets, batched pipeline:",
        *(
            f"  {mode:<8} {times[mode]:6.3f}s"
            + (
                f"  ({overhead[mode]:+.1%} vs off)"
                if mode in overhead
                else f"  ({n_sets / times['off']:.1f} tasksets/sec)"
            )
            for mode, _ in RECORDERS
        ),
        f"  trace collected {snapshot['spans']['count']} spans, "
        f"{len(snapshot['histograms'])} histograms",
    ]
    emit("BENCH_obs", "\n".join(lines))

    payload = json.dumps(snapshot, indent=2) + "\n"
    (REPO_ROOT / "BENCH_obs.json").write_text(payload)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "BENCH_obs.json").write_text(payload)
    obs.write_chrome_trace(spans, RESULTS_DIR / "repro-trace.json")

    # Sanity of the committed snapshot example.
    assert snapshot["mode"] == "trace"
    assert snapshot["spans"]["count"] > 0
    assert "runner.shard-seconds" in snapshot["histograms"]

    # Regression tripwires, far looser than the locally measured cost
    # (sub-1% for metrics, a few % for trace) so CI noise doesn't flake:
    # the recorders must stay cheap relative to the analysis they watch.
    assert overhead["metrics"] < 0.15, (
        f"metrics recorder overhead {overhead['metrics']:+.1%}"
    )
    assert overhead["trace"] < 0.25, (
        f"trace recorder overhead {overhead['trace']:+.1%}"
    )
