"""Extension experiment: sensitivity of the UDP advantage to the
utilization-difference magnitude (DESIGN.md ablation index).

Sweeps the squeeze ratio of ``repro.model.transforms.squeeze_difference``:
at r=1 every HC task has C_L = C_H (a non-MC system in disguise) and the
mechanism the paper exploits disappears — the UDP advantage over the
baseline should shrink accordingly.
"""

from repro.experiments.algorithms import get_algorithm
from repro.experiments.sensitivity import difference_sensitivity

from conftest import bench_samples, emit


def test_difference_sensitivity(once):
    algorithms = [
        get_algorithm("cu-udp-edf-vd"),
        get_algorithm("ca-udp-edf-vd"),
        get_algorithm("ca-nosort-f-f-edf-vd"),
    ]
    result = once(
        difference_sensitivity,
        algorithms,
        m=4,
        samples=bench_samples(20),
    )
    gaps = result.advantage("cu-udp-edf-vd", "ca-nosort-f-f-edf-vd")
    lines = [result.render(), ""]
    lines.append(
        "UDP advantage per squeeze ratio: "
        + ", ".join(f"{g:+.3f}" for g in gaps)
    )
    emit("sensitivity", "\n".join(lines))
    # The advantage at intact differences should be at least the advantage
    # once differences are erased (both can be ~0 on easy samples).
    assert gaps[0] >= gaps[-1] - 0.05
