#!/usr/bin/env python3
"""Avionics-style case study: a hand-built dual-criticality workload.

The paper motivates MC scheduling with safety-critical industries (AUTOSAR,
avionics).  This example models a small integrated modular avionics (IMA)
node consolidating DAL-A flight functions (HC) with DAL-C/D support
functions (LC) on a 4-core processor:

* HC: flight control loop, air data sampling, engine monitor, actuator
  supervision — certified WCETs (C_H) far above measured ones (C_L);
* LC: telemetry, display refresh, maintenance logging, camera compression —
  best-effort functions that may be shed in an emergency.

The study (a) partitions the workload with every registered strategy under
both a dynamic-priority (ECDF) and a fixed-priority (AMC-max) test,
(b) picks the CU-UDP + AMC partition — fixed priority being the industrial
preference the paper notes — and (c) demonstrates the isolation property of
partitioned MC scheduling: an engine-monitor overrun switches only its own
core to HI mode; telemetry on other cores is never disturbed.

Run:  python examples/avionics_case_study.py
"""

from repro import (
    AMCmaxTest,
    Criticality,
    ECDFTest,
    MCTask,
    TaskSet,
    get_strategy,
    partition,
    registered_strategies,
)
from repro.sim import AMCPolicy, FixedOverrunScenario, PartitionedSim
from repro.util import format_table

M = 4


def build_workload() -> TaskSet:
    """The IMA node's task set (times in 100-microsecond ticks)."""

    def high(name, period, c_lo, c_hi, deadline=None):
        return MCTask(
            period=period,
            criticality=Criticality.HC,
            wcet_lo=c_lo,
            wcet_hi=c_hi,
            deadline=period if deadline is None else deadline,
            name=name,
        )

    def low(name, period, c_lo, deadline=None):
        return MCTask(
            period=period,
            criticality=Criticality.LC,
            wcet_lo=c_lo,
            wcet_hi=c_lo,
            deadline=period if deadline is None else deadline,
            name=name,
        )

    return TaskSet(
        [
            # -- DAL-A flight functions (tight loops, pessimistic C_H) --
            high("flight-ctrl", 50, 12, 20, deadline=40),
            high("air-data", 100, 18, 35, deadline=80),
            high("engine-mon", 200, 30, 80, deadline=150),
            high("actuator-sup", 250, 40, 90, deadline=200),
            high("nav-filter", 400, 60, 150, deadline=350),
            # -- DAL-C/D support functions ------------------------------
            low("telemetry", 100, 25),
            low("display", 125, 30),
            low("maint-log", 400, 80, deadline=300),
            low("camera", 500, 170),
            low("datalink", 250, 60),
        ]
    )


def compare_strategies(taskset: TaskSet) -> None:
    """Every registered strategy under ECDF and AMC-max."""
    tests = {"ecdf": ECDFTest(), "amc-max": AMCmaxTest()}
    rows = []
    for name in registered_strategies():
        row: list[object] = [name]
        for test in tests.values():
            result = partition(taskset, M, test, get_strategy(name))
            if result.success:
                diffs = [c.utilization.difference for c in result.cores]
                row.append(f"ok (diff gap {max(diffs) - min(diffs):.2f})")
            else:
                row.append(f"fail @ {result.failed_task.name}")
        rows.append(row)
    print(format_table(["strategy"] + list(tests), rows))
    print()


def demonstrate_isolation(taskset: TaskSet) -> None:
    """Engine-monitor overrun: only its core switches; others stay LO."""
    test = AMCmaxTest()
    result = partition(taskset, M, test, get_strategy("cu-udp"))
    assert result.success, "CU-UDP + AMC-max should place this workload"
    print(result.describe())
    print()

    engine = next(t for t in taskset if t.name == "engine-mon")
    engine_core = result.core_of(engine)

    def policy_factory(core: TaskSet) -> AMCPolicy:
        analysis = test.analyze(core)
        assert analysis.schedulable
        return AMCPolicy(analysis.priorities)

    sim = PartitionedSim(result.cores, policy_factory)
    outcome = sim.run(
        lambda core: FixedOverrunScenario({engine.task_id}), horizon=50_000
    )

    print(f"engine-mon lives on core {engine_core}")
    print(f"cores that switched to HI mode: {outcome.cores_switched}")
    for idx, core_result in enumerate(outcome.per_core):
        print(
            f"  core {idx}: switches={len(core_result.mode_switches)} "
            f"lc_dropped={core_result.lc_jobs_dropped} "
            f"violations={len(core_result.mc_violations)}"
        )
    assert outcome.cores_switched in ([], [engine_core]), (
        "mode switches must stay on the overrunning core"
    )
    assert outcome.mc_correct
    print("isolation holds: the overrun never left its own core")


def main() -> None:
    taskset = build_workload()
    print(taskset.describe())
    print()
    compare_strategies(taskset)
    demonstrate_isolation(taskset)


if __name__ == "__main__":
    main()
