#!/usr/bin/env python3
"""The worked examples of Figures 1 and 2 of the paper, re-derived.

The paper's figures carry concrete task sets only in their images (not in
the text), so this script uses equivalent task sets — found with this
library and hard-coded below — that exhibit *exactly* the phenomenon each
figure illustrates (see DESIGN.md §5):

* Figure 1: worst-fit on HC utilization alone (CA-Wu-F) strands the LC task,
  while CA-UDP's worst-fit on the utilization difference leaves room for it.
* Figure 2: criticality-aware CA-UDP strands a *heavy* LC task because all
  HC tasks are placed first; criticality-unaware CU-UDP places the heavy LC
  task early (third, by utilization) and succeeds.

All allocation decisions are printed step-free via the partition describe()
output; the EDF-VD admission inequality from Section III is also evaluated
per core so the failure points are visible.

Run:  python examples/paper_examples.py
"""

from repro import (
    Criticality,
    EDFVDTest,
    MCTask,
    TaskSet,
    ca_udp,
    ca_wu_f,
    cu_udp,
    partition,
)

PERIOD = 100  # common period: utilizations read directly as C/100


def hc(name: str, u_hi: float, u_lo: float) -> MCTask:
    """HC task with the given HI/LO utilizations over the common period."""
    return MCTask(
        period=PERIOD,
        criticality=Criticality.HC,
        wcet_lo=round(u_lo * PERIOD),
        wcet_hi=round(u_hi * PERIOD),
        name=name,
    )


def lc(name: str, u_lo: float) -> MCTask:
    """LC task with the given utilization over the common period."""
    wcet = round(u_lo * PERIOD)
    return MCTask(
        period=PERIOD,
        criticality=Criticality.LC,
        wcet_lo=wcet,
        wcet_hi=wcet,
        name=name,
    )


def lc_capacity(core: TaskSet) -> float:
    """Largest LC utilization the EDF-VD test still admits on ``core``.

    Evaluates the Section III inequality
    ``U_LL <= (1 - U_HH) / (1 - (U_HH - U_LH))`` together with the plain-EDF
    reserve ``U_LL + U_HH <= 1`` and the LO-mode bound ``U_LL + U_LH <= 1``.
    """
    util = core.utilization
    b, c = util.u_lh, util.u_hh
    plain = 1.0 - c
    scaled = (1.0 - c) / (1.0 - (c - b)) if c < 1.0 else 0.0
    return max(plain, min(1.0 - b, scaled)) - util.u_ll


def show(title: str, taskset: TaskSet, strategies) -> None:
    print(f"=== {title} ===")
    print(taskset.describe())
    test = EDFVDTest()
    for strategy in strategies:
        result = partition(taskset, 2, test, strategy)
        print()
        print(result.describe())
        if result.success:
            for idx, core in enumerate(result.cores):
                print(
                    f"    core {idx} residual LC capacity: "
                    f"{lc_capacity(core):+.3f}"
                )
    print()


def figure1() -> None:
    """CA-Wu-F vs CA-UDP (Figure 1).

    tau1 has a high HI utilization but a *small* difference (0.60/0.55);
    tau2 has a large difference (0.50/0.10).  Worst-fit on U_HH alone pairs
    tau2 with tau3, stacking difference 0.45 on one core — the LC task
    (u=0.45) then fails everywhere.  CA-UDP instead pairs tau1 with tau3
    (difference 0.10) and leaves tau2's core with enough admissible LC
    capacity.
    """
    taskset = TaskSet(
        [
            hc("tau1", 0.60, 0.55),
            hc("tau2", 0.50, 0.10),
            hc("tau3", 0.30, 0.25),
            lc("tau4", 0.45),
        ]
    )
    show("Figure 1: CA-UDP vs CA-Wu-F", taskset, [ca_wu_f(), ca_udp()])


def figure2() -> None:
    """CA-UDP vs CU-UDP (Figure 2).

    The LC task tau5 (u=0.42) is heavier than two of the HC tasks.  CA-UDP
    places all four HC tasks first and tau5 no longer fits anywhere.
    CU-UDP sorts all tasks together — tau5 is allocated third, right after
    tau1 and tau2 — and the partition succeeds with tau5 sharing a core
    with tau1, exactly the pattern in the paper's figure.
    """
    taskset = TaskSet(
        [
            hc("tau1", 0.61, 0.51),
            hc("tau2", 0.46, 0.41),
            hc("tau3", 0.20, 0.15),
            hc("tau4", 0.15, 0.10),
            lc("tau5", 0.42),
        ]
    )
    show("Figure 2: CA-UDP vs CU-UDP", taskset, [ca_udp(), cu_udp()])


def main() -> None:
    figure1()
    figure2()


if __name__ == "__main__":
    main()
