#!/usr/bin/env python3
"""Quickstart: generate, partition, analyze and simulate an MC task system.

Walks the full pipeline of the library in five steps:

1. generate a dual-criticality task set with the paper's fair generator;
2. partition it onto 4 cores with CU-UDP under the EDF-VD test;
3. compare against the prior strategy with a speed-up bound
   (CA(nosort)-F-F);
4. inspect the per-core utilization differences UDP balanced;
5. simulate the partition with HC overruns and confirm MC-correctness.

Run:  python examples/quickstart.py
"""

from repro import (
    EDFVDTest,
    MCTaskSetGenerator,
    ca_nosort_f_f,
    cu_udp,
    derive_rng,
    edfvd_scaling_factor,
    partition,
)
from repro.sim import EDFVDPolicy, FixedOverrunScenario, PartitionedSim

M = 4  # processors


def main() -> None:
    rng = derive_rng("quickstart")

    # 1. A moderately loaded system: normalized U_HH=0.6, U_LH=0.3, U_LL=0.35.
    generator = MCTaskSetGenerator(m=M)
    taskset = generator.generate(rng, u_hh=0.6, u_lh=0.3, u_ll=0.35)
    assert taskset is not None, "generation infeasible for these targets"
    print(taskset.describe())
    print()

    # 2. Partition with the paper's CU-UDP strategy under EDF-VD.
    test = EDFVDTest()
    result = partition(taskset, M, test, cu_udp())
    print(result.describe())
    print()

    # 3. The prior speed-up-bound baseline for comparison.
    baseline = partition(taskset, M, test, ca_nosort_f_f())
    print(baseline.describe())
    print()

    if not result.success:
        print("CU-UDP could not place this set; try lower utilization targets")
        return

    # 4. UDP balances the per-core utilization difference U_HH - U_LH.
    diffs = [core.utilization.difference for core in result.cores]
    print(
        "per-core utilization differences under CU-UDP: "
        + ", ".join(f"{d:.3f}" for d in diffs)
        + f"  (max gap {max(diffs) - min(diffs):.3f})"
    )
    print()

    # 5. Simulate every core with all HC tasks overrunning on every job —
    #    the sustained worst case — and check MC-correctness.
    sim = PartitionedSim(
        result.cores,
        policy_factory=lambda core: EDFVDPolicy(
            scaling_factor=edfvd_scaling_factor(core)
        ),
    )
    outcome = sim.run(lambda core_index: FixedOverrunScenario(None), horizon=20_000)
    print(
        f"simulation: cores switched to HI mode: {outcome.cores_switched}; "
        f"MC-correct: {outcome.mc_correct}"
    )
    assert outcome.mc_correct, "accepted partition must simulate cleanly"


if __name__ == "__main__":
    main()
