#!/usr/bin/env python3
"""Strategy explorer: acceptance ratios over a custom workload region.

Sweeps a small acceptance-ratio experiment — like the paper's Figures 3-5
but at laptop scale and for any (m, deadline type, PH) region you pick via
CLI flags — and prints the acceptance table, the weighted acceptance ratio
and the improvement summary of the UDP strategies over the baselines.

Run examples:

    python examples/explore_partitioning.py
    python examples/explore_partitioning.py --m 4 --deadline constrained
    python examples/explore_partitioning.py --samples 50 --ph 0.7
"""

import argparse

from repro.experiments import (
    AcceptanceSweep,
    SweepConfig,
    get_algorithm,
    improvement_summary,
    render_sweep,
    weighted_acceptance_ratio,
)

IMPLICIT_ALGORITHMS = (
    "ca-udp-edf-vd",
    "cu-udp-edf-vd",
    "ca-nosort-f-f-edf-vd",
    "cu-udp-ecdf",
    "ca-f-f-ey",
)
CONSTRAINED_ALGORITHMS = (
    "cu-udp-amc",
    "cu-udp-ecdf",
    "eca-wu-f-ey",
    "ca-f-f-ey",
)
#: With a degraded LC service model the interesting comparison is the
#: residual-aware UDP strategies against their plain twins (AMC cannot
#: analyze degraded service and drops out).
DEGRADED_ALGORITHMS = (
    "cu-udp-edf-vd",
    "cu-udp-res-edf-vd",
    "cu-udp-res-ecdf",
    "cu-udp-res-ey",
)


def parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--m", type=int, default=2, help="processor count")
    parser.add_argument(
        "--deadline",
        choices=("implicit", "constrained"),
        default="implicit",
        help="deadline model",
    )
    parser.add_argument(
        "--ph", type=float, default=0.5, help="fraction of HC tasks"
    )
    parser.add_argument(
        "--samples", type=int, default=25, help="task sets per UB bucket"
    )
    parser.add_argument(
        "--ub-min", type=float, default=0.4, help="skip buckets below this UB"
    )
    parser.add_argument(
        "--service",
        default="full-drop",
        help=(
            "LC service model in HI mode: full-drop (default), "
            "imprecise:<rho> or elastic:<lambda>; a degraded model switches "
            "to the residual-aware UDP algorithm set (implicit only)"
        ),
    )
    return parser.parse_args()


def show_worked_partition(config: SweepConfig, algorithm_name: str) -> None:
    """Partition one generated task set and print the per-core breakdown.

    Under a degraded service model the ``describe()`` lines include
    ``U_res`` and ``rdiff`` — the residual-aware difference the
    ``*-res`` strategies balance — next to the classical ``diff``.
    """
    sweep = AcceptanceSweep(config)
    algorithm = get_algorithm(algorithm_name)
    for bucket, points in sorted(sweep.bucket_points().items()):
        for taskset in sweep.tasksets_for_bucket(bucket, points):
            result = algorithm.partition(taskset, config.m)
            if result.success:
                print(f"worked example (UB~{bucket:.2f}):")
                print(result.describe())
                return


def main() -> None:
    args = parse_args()
    degraded = args.service != "full-drop"
    if degraded and args.deadline != "implicit":
        raise SystemExit(
            "--service currently pairs with --deadline implicit (the "
            "degraded sweeps mirror fig7)"
        )
    if degraded:
        names = DEGRADED_ALGORITHMS
    elif args.deadline == "implicit":
        names = IMPLICIT_ALGORITHMS
    else:
        names = CONSTRAINED_ALGORITHMS
    algorithms = [get_algorithm(name) for name in names]

    config = SweepConfig(
        label="explore",
        m=args.m,
        deadline_type=args.deadline,
        p_high=args.ph,
        samples_per_bucket=args.samples,
        ub_min=args.ub_min,
        service=args.service,
    )
    if degraded:
        show_worked_partition(config, "cu-udp-res-edf-vd")
        print()
    sweep = AcceptanceSweep(config).run(algorithms)

    print(render_sweep(sweep))
    print()
    rows = [
        f"  WAR({name}) = "
        f"{weighted_acceptance_ratio(sweep.buckets, ratios):.3f}"
        for name, ratios in sweep.ratios.items()
    ]
    print("weighted acceptance ratios:")
    print("\n".join(rows))
    print()
    udp = [n for n in names if "udp" in n]
    baselines = [n for n in names if "udp" not in n]
    print(improvement_summary(sweep, udp, baselines))


if __name__ == "__main__":
    main()
