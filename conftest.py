"""Repo-root pytest configuration.

Ensures ``src/`` is importable even when the package is not installed
(e.g. in offline environments where ``pip install -e .`` cannot build an
editable wheel).  When ``repro`` is installed normally this is a no-op.
"""

import sys
from pathlib import Path

_SRC = str(Path(__file__).resolve().parent / "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
